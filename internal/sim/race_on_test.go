//go:build race

package sim

// raceEnabled reports whether the race detector is active; allocation and
// scale tests skip under it (instrumentation changes both heap behavior
// and throughput).
const raceEnabled = true
