package sim

import (
	"fmt"

	"flywheel/internal/branch"
	"flywheel/internal/cacti"
	"flywheel/internal/core"
	"flywheel/internal/mem"
	"flywheel/internal/ooo"
	"flywheel/internal/pipe"
	"flywheel/internal/power"
	"flywheel/internal/sample"
	"flywheel/internal/workload"
)

// Sampling configures sampled execution (see package sample): the zero
// value runs exact, a non-zero Period alternates fast-forwarded functional
// warming with detailed windows and reports confidence intervals across
// the windows.
type Sampling = sample.Config

// SampledStats reports how a sampled run covered the stream and how much
// to trust its estimates. The relative CI95 fields are 95% confidence
// half-intervals relative to the mean (0.02 means "±2%").
type SampledStats struct {
	Windows       int     `json:"windows"`
	MeasuredInsts uint64  `json:"measured_insts"`
	TotalInsts    uint64  `json:"total_insts"`
	SkippedInsts  uint64  `json:"skipped_insts"` // fast-forwarded, not simulated in detail
	IPCRelCI95    float64 `json:"ipc_rel_ci95"`
	TimeRelCI95   float64 `json:"time_rel_ci95"`
	EnergyRelCI95 float64 `json:"energy_rel_ci95"`
}

// sampledView is the architecture-independent cumulative counter view the
// sampled runner differences at window marks. Every field is a plain
// counter (or a struct of counters), so an interval's activity is the
// fieldwise difference of two views.
type sampledView struct {
	Retired      uint64
	Cycles       uint64
	TimePS       int64
	ReplayPS     int64
	Act          power.Activity
	Pred         branch.Stats
	Mispredicts  uint64
	Divergences  uint64
	CondBranches uint64
	Prefetch     mem.PrefetchStats
	Demand       mem.DemandStats
}

// sampledCore adapts one timing core to the sampled runner: a single core
// instance persists across all windows (so the Execution Cache, rename
// pools, predictor, and caches warm once and stay warm), driven through an
// instruction gate and resumed window by window.
type sampledCore struct {
	warmer *pipe.Warmer
	shape  power.MachineShape
	resume func(warmupInsts uint64) bool
	run    func() error
	view   func() sampledView
	marks  func(ms []uint64, fn func(i int, v sampledView))
}

func baselineView(s ooo.Stats) sampledView {
	return sampledView{
		Retired:      s.Retired,
		Cycles:       s.Cycles,
		TimePS:       s.TimePS,
		Act:          baselineActivity(s),
		Pred:         s.Pred,
		Mispredicts:  s.Mispredicts,
		CondBranches: s.CondBranches,
		Prefetch:     s.Prefetch,
		Demand:       s.Demand,
	}
}

func flywheelView(s core.Stats) sampledView {
	return sampledView{
		Retired:      s.Retired,
		Cycles:       s.Cycles(),
		TimePS:       s.TimePS,
		ReplayPS:     s.ReplayTimePS,
		Act:          s.Activity(),
		Pred:         s.Pred,
		Mispredicts:  s.Mispredicts,
		Divergences:  s.Divergences,
		CondBranches: s.CondBranches,
		Prefetch:     s.Prefetch,
		Demand:       s.Demand,
	}
}

// runSampled is Run's sampled-execution path: same workload snapshotting
// and trace-cache source acquisition, but the core runs only the detailed
// windows of the sampling schedule; everything between them fast-forwards
// through functional warming (and, beyond the warming horizon, the trace
// reader's chunk-indexed seek).
func runSampled(cfg RunConfig, w *workload.Workload, ws *warmSnapshot) (Result, error) {
	stream, finish, err := acquireSource(w, ws, cfg.MaxInstructions)
	if err != nil {
		return Result{}, err
	}
	finished := false
	defer func() {
		if !finished {
			finish(fmt.Errorf("sim %s/%s: sampled run aborted", cfg.Workload, cfg.Arch))
		}
	}()
	period := cacti.BaselinePeriodPS(cfg.Node)
	tech, err := power.Tech(cfg.Node)
	if err != nil {
		finish(err)
		finished = true
		return Result{}, err
	}

	gate := sample.NewGate(stream)
	var sc sampledCore
	switch cfg.Arch {
	case ArchBaseline:
		bc := baselineConfig(cfg, period)
		c := ooo.New(bc, gate)
		if err := ws.warm(c.Warmer(), w, bc.Mem, bc.Branch); err != nil {
			finish(err)
			finished = true
			return Result{}, err
		}
		sc = sampledCore{
			warmer: c.Warmer(),
			shape:  power.BaselineShape(),
			resume: func(uint64) bool { return c.Resume() },
			run:    func() error { _, err := c.Run(); return err },
			view:   func() sampledView { return baselineView(c.StatsSnapshot()) },
			marks: func(ms []uint64, fn func(int, sampledView)) {
				c.SetMarks(ms, func(i int, s ooo.Stats) { fn(i, baselineView(s)) })
			},
		}
	case ArchFlywheel, ArchRegAlloc:
		fc := flywheelConfig(cfg, period)
		c := core.New(fc, gate)
		if err := ws.warm(c.Warmer(), w, fc.Mem, fc.Branch); err != nil {
			finish(err)
			finished = true
			return Result{}, err
		}
		sc = sampledCore{
			warmer: c.Warmer(),
			shape:  power.FlywheelShape(),
			resume: c.Resume,

			run:  func() error { _, err := c.Run(); return err },
			view: func() sampledView { return flywheelView(c.StatsSnapshot()) },
			marks: func(ms []uint64, fn func(int, sampledView)) {
				c.SetMarks(ms, func(i int, s core.Stats) { fn(i, flywheelView(s)) })
			},
		}
	default:
		err := fmt.Errorf("sim: unknown architecture %d", cfg.Arch)
		finish(err)
		finished = true
		return Result{}, err
	}

	res, runErr := sampleLoop(cfg, stream, gate, sc, tech)
	finish(runErr)
	finished = true
	if runErr != nil {
		return Result{}, fmt.Errorf("sim %s/%s: %w", cfg.Workload, cfg.Arch, runErr)
	}
	return res, nil
}

// sampleLoop drives the alternation and aggregates the estimates.
func sampleLoop(cfg RunConfig, stream pipe.InstSource, gate *sample.Gate, sc sampledCore, tech power.TechParams) (Result, error) {
	sp := cfg.Sampling
	span := sp.Span()
	pos := uint64(0)         // stream position: records delivered or fast-forwarded
	detailed := uint64(0)    // records run through the timing core
	nextStart := sp.Offset() // stream position where the next detailed span begins
	var acc sample.Accumulator
	var m sampledView // summed per-window measurement deltas
	var sumEnergyPJ, sumLeakPJ float64

	// Bootstrap: run the first sample.BootstrapInsts of the stream in
	// detail, unmeasured, before the periodic schedule starts. The
	// Execution Cache cannot be functionally warmed — its traces only
	// exist because detailed execution built them — and the exact run
	// builds its hot traces exactly once, from a cold pipeline, right at
	// the stream origin. Replaying that genesis gives the sampled run the
	// same traces (same boundaries, same issue-unit structure) instead of
	// variants built mid-stream under different pipeline conditions.
	boot := uint64(sample.BootstrapInsts)
	gate.Open(boot)
	if err := sc.run(); err != nil {
		return Result{}, err
	}
	delivered := gate.TakeDelivered()
	pos += delivered
	detailed += delivered
	if delivered < boot {
		return Result{}, fmt.Errorf("sampling: stream ended inside the %d-instruction bootstrap (%d delivered)", boot, delivered)
	}
	// Windows the bootstrap already covered are dropped from the schedule
	// (their span was simulated, but mid-bootstrap snapshots were not taken).
	for nextStart < pos {
		nextStart += sp.Period
	}

	streamDry := false
	for !streamDry {
		if nextStart > pos {
			gap := nextStart - pos
			n := sample.FastForward(stream, sc.warmer, gap)
			pos += n
			if n < gap {
				break // stream ended during the fast-forward
			}
		}
		if !sc.resume(sp.WarmupInsts) {
			break // the program retired HALT inside an earlier window
		}
		start := sc.view()
		var mk [2]sampledView
		var got [2]bool
		sc.marks(
			[]uint64{start.Retired + sp.WarmupInsts, start.Retired + sp.WarmupInsts + sp.WindowInsts},
			func(i int, v sampledView) { mk[i], got[i] = v, true },
		)
		gate.Open(span)
		if err := sc.run(); err != nil {
			return Result{}, err
		}
		delivered := gate.TakeDelivered()
		pos += delivered
		detailed += delivered
		if delivered < span {
			streamDry = true // program ended inside this window
		}
		nextStart += sp.Period
		if !got[0] || !got[1] {
			continue // truncated before the measurement completed: discard
		}
		o := sample.Obs{
			Insts:  mk[1].Retired - mk[0].Retired,
			Cycles: mk[1].Cycles - mk[0].Cycles,
			TimePS: mk[1].TimePS - mk[0].TimePS,
		}
		// The power model is linear in the activity record, so the energy
		// of a window is exactly the energy of its activity delta.
		rep := power.Compute(subActivity(mk[1].Act, mk[0].Act), sc.shape, tech)
		o.EnergyPJ = rep.TotalPJ
		acc.Observe(o)
		sumEnergyPJ += rep.TotalPJ
		sumLeakPJ += rep.TotalPJ * rep.LeakageFrac
		addView(&m, subView(mk[1], mk[0]))
	}
	if acc.Windows() == 0 {
		return Result{}, fmt.Errorf("sampling produced no complete windows (period %d, window span %d, stream ended at %d instructions)",
			sp.Period, span, pos)
	}

	est := acc.Estimate()
	n := float64(pos)
	scale := n / float64(est.MeasuredInsts)
	res := Result{Config: cfg}
	res.Retired = pos
	res.Cycles = uint64(est.CPI*n + 0.5)
	res.TimePS = int64(est.TPI*n + 0.5)
	if est.CPI > 0 {
		res.IPC = 1 / est.CPI
	}
	res.EnergyPJ = est.EPI * n
	if res.TimePS > 0 {
		res.PowerW = res.EnergyPJ / float64(res.TimePS) // pJ/ps = W
	}
	if sumEnergyPJ > 0 {
		res.LeakageFrac = sumLeakPJ / sumEnergyPJ
	}
	if m.TimePS > 0 {
		res.ECResidency = float64(m.ReplayPS) / float64(m.TimePS)
	}
	// Ratios (accuracy, coverage, hit rates) come straight from the summed
	// measurement-window counters; volume counters extrapolate from the
	// measured fraction to the whole stream.
	res.BranchAccuracy = m.Pred.Accuracy()
	res.fillFrontend(m.CondBranches, m.Prefetch, m.Demand)
	res.Mispredicts = extrapolate(m.Mispredicts, scale)
	res.Divergences = extrapolate(m.Divergences, scale)
	res.CondBranches = extrapolate(m.CondBranches, scale)
	res.PrefetchIssued = extrapolate(m.Prefetch.Issued, scale)
	res.PrefetchUseful = extrapolate(m.Prefetch.Useful, scale)
	res.PrefetchLate = extrapolate(m.Prefetch.Late, scale)
	res.Sampled = &SampledStats{
		Windows:       est.Windows,
		MeasuredInsts: est.MeasuredInsts,
		TotalInsts:    pos,
		SkippedInsts:  pos - detailed,
		IPCRelCI95:    sample.RelCI95(est.CPI, est.CPIErr),
		TimeRelCI95:   sample.RelCI95(est.TPI, est.TPIErr),
		EnergyRelCI95: sample.RelCI95(est.EPI, est.EPIErr),
	}
	return res, nil
}

func extrapolate(v uint64, scale float64) uint64 {
	return uint64(float64(v)*scale + 0.5)
}

// subView differences two cumulative views fieldwise (a - b).
func subView(a, b sampledView) sampledView {
	return sampledView{
		Retired:      a.Retired - b.Retired,
		Cycles:       a.Cycles - b.Cycles,
		TimePS:       a.TimePS - b.TimePS,
		ReplayPS:     a.ReplayPS - b.ReplayPS,
		Act:          subActivity(a.Act, b.Act),
		Pred:         subBranch(a.Pred, b.Pred),
		Mispredicts:  a.Mispredicts - b.Mispredicts,
		Divergences:  a.Divergences - b.Divergences,
		CondBranches: a.CondBranches - b.CondBranches,
		Prefetch:     subPrefetch(a.Prefetch, b.Prefetch),
		Demand:       subDemand(a.Demand, b.Demand),
	}
}

// addView accumulates d into m (Act is not accumulated; per-window energy
// is computed before summing).
func addView(m *sampledView, d sampledView) {
	m.Retired += d.Retired
	m.Cycles += d.Cycles
	m.TimePS += d.TimePS
	m.ReplayPS += d.ReplayPS
	m.Pred = addBranch(m.Pred, d.Pred)
	m.Mispredicts += d.Mispredicts
	m.Divergences += d.Divergences
	m.CondBranches += d.CondBranches
	m.Prefetch = addPrefetch(m.Prefetch, d.Prefetch)
	m.Demand = addDemand(m.Demand, d.Demand)
}

func subActivity(a, b power.Activity) power.Activity {
	d := power.Activity{
		TimePS:      a.TimePS - b.TimePS,
		FECycles:    a.FECycles - b.FECycles,
		BECycles:    a.BECycles - b.BECycles,
		FetchGroups: a.FetchGroups - b.FetchGroups,
		Fetched:     a.Fetched - b.Fetched,
		Renamed:     a.Renamed - b.Renamed,
		BPLookups:   a.BPLookups - b.BPLookups,
		BPUpdates:   a.BPUpdates - b.BPUpdates,
		IWInserts:   a.IWInserts - b.IWInserts,
		IWSelects:   a.IWSelects - b.IWSelects,
		RegReads:    a.RegReads - b.RegReads,
		RegWrites:   a.RegWrites - b.RegWrites,
		ROBWrites:   a.ROBWrites - b.ROBWrites,
		Retires:     a.Retires - b.Retires,
		LSQOps:      a.LSQOps - b.LSQOps,
		L1I:         subCache(a.L1I, b.L1I),
		L1D:         subCache(a.L1D, b.L1D),
		L2:          subCache(a.L2, b.L2),

		ECTagLookups:  a.ECTagLookups - b.ECTagLookups,
		ECBlockReads:  a.ECBlockReads - b.ECBlockReads,
		ECBlockWrites: a.ECBlockWrites - b.ECBlockWrites,
		UpdateOps:     a.UpdateOps - b.UpdateOps,
		Checkpoints:   a.Checkpoints - b.Checkpoints,
	}
	for i := range d.FUOps {
		d.FUOps[i] = a.FUOps[i] - b.FUOps[i]
	}
	return d
}

func subCache(a, b mem.CacheStats) mem.CacheStats {
	return mem.CacheStats{
		Reads:      a.Reads - b.Reads,
		Writes:     a.Writes - b.Writes,
		ReadMiss:   a.ReadMiss - b.ReadMiss,
		WriteMiss:  a.WriteMiss - b.WriteMiss,
		Writebacks: a.Writebacks - b.Writebacks,
	}
}

func subBranch(a, b branch.Stats) branch.Stats {
	return branch.Stats{
		Lookups:       a.Lookups - b.Lookups,
		CondBranches:  a.CondBranches - b.CondBranches,
		CondWrong:     a.CondWrong - b.CondWrong,
		IndirectJumps: a.IndirectJumps - b.IndirectJumps,
		IndirectWrong: a.IndirectWrong - b.IndirectWrong,
		ReturnsRight:  a.ReturnsRight - b.ReturnsRight,
		Updates:       a.Updates - b.Updates,
	}
}

func addBranch(a, b branch.Stats) branch.Stats {
	return branch.Stats{
		Lookups:       a.Lookups + b.Lookups,
		CondBranches:  a.CondBranches + b.CondBranches,
		CondWrong:     a.CondWrong + b.CondWrong,
		IndirectJumps: a.IndirectJumps + b.IndirectJumps,
		IndirectWrong: a.IndirectWrong + b.IndirectWrong,
		ReturnsRight:  a.ReturnsRight + b.ReturnsRight,
		Updates:       a.Updates + b.Updates,
	}
}

func subPrefetch(a, b mem.PrefetchStats) mem.PrefetchStats {
	return mem.PrefetchStats{
		Trains:       a.Trains - b.Trains,
		Issued:       a.Issued - b.Issued,
		Useful:       a.Useful - b.Useful,
		Late:         a.Late - b.Late,
		DemandMisses: a.DemandMisses - b.DemandMisses,
	}
}

func addPrefetch(a, b mem.PrefetchStats) mem.PrefetchStats {
	return mem.PrefetchStats{
		Trains:       a.Trains + b.Trains,
		Issued:       a.Issued + b.Issued,
		Useful:       a.Useful + b.Useful,
		Late:         a.Late + b.Late,
		DemandMisses: a.DemandMisses + b.DemandMisses,
	}
}

func subDemand(a, b mem.DemandStats) mem.DemandStats {
	return mem.DemandStats{
		DataAccesses: a.DataAccesses - b.DataAccesses,
		DataCycles:   a.DataCycles - b.DataCycles,
		L2Lookups:    a.L2Lookups - b.L2Lookups,
		L2Hits:       a.L2Hits - b.L2Hits,
	}
}

func addDemand(a, b mem.DemandStats) mem.DemandStats {
	return mem.DemandStats{
		DataAccesses: a.DataAccesses + b.DataAccesses,
		DataCycles:   a.DataCycles + b.DataCycles,
		L2Lookups:    a.L2Lookups + b.L2Lookups,
		L2Hits:       a.L2Hits + b.L2Hits,
	}
}
