package sim

import (
	"math"
	"testing"
	"time"

	"flywheel/internal/cacti"
	"flywheel/internal/sample"
)

// TestSampledScale pins the sampled tier's headline trade at production
// scale: across the accelerated cores and the full workload suite at 300k
// instructions, the default schedule must cut the detailed-simulation work
// by at least 5x per cell while the suite-mean estimate error stays within
// 2% IPC and 3% energy of the exact runs.
//
// The 5x claim is asserted on the deterministic detailed-work ratio
// (instructions simulated in detail versus stream length) — wall-clock in
// a shared CI container is too noisy to gate tightly, so elapsed time only
// has to clear a generous 3x floor per cell; the measured speedups are
// logged for the record.
func TestSampledScale(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("scale measurement runs without -short/-race")
	}
	const insts = 300_000
	type cell struct {
		arch Arch
		wl   string
	}
	var cells []cell
	for _, arch := range []Arch{ArchFlywheel, ArchRegAlloc} {
		for _, wl := range []string{"ijpeg", "gcc", "vpr"} {
			cells = append(cells, cell{arch, wl})
		}
	}
	var sumIPCErr, sumEErr float64
	for _, c := range cells {
		cfg := RunConfig{
			Workload: c.wl, Arch: c.arch, Node: cacti.Node130,
			FEBoostPct: 50, BEBoostPct: 50, MaxInstructions: insts,
		}
		if _, err := Run(cfg); err != nil { // prime snapshot + trace caches
			t.Fatal(err)
		}
		start := time.Now()
		exact, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		exactDur := time.Since(start)

		scfg := cfg
		// The shipped default schedule — the one -tier sampled runs.
		scfg.Sampling = Sampling{Period: sample.DefaultPeriod}
		start = time.Now()
		sampled, err := Run(scfg)
		if err != nil {
			t.Fatal(err)
		}
		sampledDur := time.Since(start)

		st := sampled.Sampled
		if st == nil || st.Windows < 3 {
			t.Fatalf("%v/%s: implausible sampled stats %+v", c.arch, c.wl, st)
		}
		// The deterministic 5x claim: at most 1/5 of the stream ran in
		// detailed simulation (bootstrap, warm-ups and windows included).
		detailedFrac := 1 - float64(st.SkippedInsts)/float64(st.TotalInsts)
		if detailedFrac > 0.2 {
			t.Errorf("%v/%s: detailed fraction %.3f exceeds 1/5", c.arch, c.wl, detailedFrac)
		}
		speedup := float64(exactDur) / float64(sampledDur)
		if speedup < 3 {
			t.Errorf("%v/%s: wall-clock speedup %.1fx below the 3x noise floor (exact %v, sampled %v)",
				c.arch, c.wl, speedup, exactDur, sampledDur)
		}
		ipcErr := 100 * (sampled.IPC - exact.IPC) / exact.IPC
		eErr := 100 * (sampled.EnergyPJ - exact.EnergyPJ) / exact.EnergyPJ
		sumIPCErr += math.Abs(ipcErr)
		sumEErr += math.Abs(eErr)
		t.Logf("%v/%-5s: %.1fx wall-clock (%5.1fms -> %5.1fms), detailed %4.1f%%, IPC err %+5.2f%%, energy err %+5.2f%%, %d windows",
			c.arch, c.wl, speedup,
			float64(exactDur.Microseconds())/1e3, float64(sampledDur.Microseconds())/1e3,
			100*detailedFrac, ipcErr, eErr, st.Windows)
	}
	n := float64(len(cells))
	if mean := sumIPCErr / n; mean > 2 {
		t.Errorf("suite-mean |IPC error| %.2f%% exceeds 2%%", mean)
	}
	if mean := sumEErr / n; mean > 3 {
		t.Errorf("suite-mean |energy error| %.2f%% exceeds 3%%", mean)
	}
}
