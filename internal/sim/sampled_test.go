package sim

import (
	"math"
	"testing"

	"flywheel/internal/cacti"
)

// sampledCfg is the shared scenario: long enough that the default schedule
// collects a healthy number of windows.
func sampledCfg(arch Arch) RunConfig {
	return RunConfig{
		Workload: "ijpeg", Arch: arch, Node: cacti.Node130,
		FEBoostPct: 50, BEBoostPct: 50, MaxInstructions: 300_000,
	}
}

func TestSampledRunEstimatesMatchExact(t *testing.T) {
	for _, arch := range []Arch{ArchBaseline, ArchFlywheel, ArchRegAlloc} {
		cfg := sampledCfg(arch)
		exact, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v exact: %v", arch, err)
		}
		cfg.Sampling = Sampling{Period: 60_000, WindowInsts: 6_000, WarmupInsts: 2_000, Seed: 1}
		sampled, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v sampled: %v", arch, err)
		}
		if sampled.Sampled == nil {
			t.Fatalf("%v: sampled run missing SampledStats", arch)
		}
		st := sampled.Sampled
		if st.Windows < 3 {
			t.Errorf("%v: only %d windows", arch, st.Windows)
		}
		if st.MeasuredInsts >= sampled.Retired/2 {
			t.Errorf("%v: measured %d of %d instructions — sampling barely skipped anything",
				arch, st.MeasuredInsts, sampled.Retired)
		}
		if st.SkippedInsts == 0 {
			t.Errorf("%v: no instructions were fast-forwarded", arch)
		}
		if sampled.Retired != exact.Retired {
			t.Errorf("%v: sampled covered %d instructions, exact retired %d", arch, sampled.Retired, exact.Retired)
		}
		ipcErr := math.Abs(sampled.IPC/exact.IPC - 1)
		if ipcErr > 0.05 {
			t.Errorf("%v: sampled IPC %.4f vs exact %.4f (%.1f%% error)", arch, sampled.IPC, exact.IPC, 100*ipcErr)
		}
		energyErr := math.Abs(sampled.EnergyPJ/exact.EnergyPJ - 1)
		if energyErr > 0.08 {
			t.Errorf("%v: sampled energy %.0f vs exact %.0f (%.1f%% error)", arch, sampled.EnergyPJ, exact.EnergyPJ, 100*energyErr)
		}
		if exact.Sampled != nil {
			t.Errorf("%v: exact run unexpectedly carries SampledStats", arch)
		}
	}
}

// TestSampledDeterministic: same config, same estimates — the schedule is
// seeded and the replay is canonical.
func TestSampledDeterministic(t *testing.T) {
	cfg := sampledCfg(ArchFlywheel)
	cfg.Sampling = Sampling{Period: 25_000}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.IPC != b.IPC || a.EnergyPJ != b.EnergyPJ || a.TimePS != b.TimePS {
		t.Fatalf("sampled runs differ: IPC %v vs %v, energy %v vs %v", a.IPC, b.IPC, a.EnergyPJ, b.EnergyPJ)
	}
	if *a.Sampled != *b.Sampled {
		t.Fatalf("sampled stats differ: %+v vs %+v", a.Sampled, b.Sampled)
	}
}

// TestSampledSeedMovesWindows: a different seed shifts the window phase,
// which must change the measured set (while staying a valid estimate).
func TestSampledSeedMovesWindows(t *testing.T) {
	cfg := sampledCfg(ArchFlywheel)
	cfg.Sampling = Sampling{Period: 25_000, Seed: 1}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Sampling.Seed = 99
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles == b.Cycles && a.TimePS == b.TimePS && a.EnergyPJ == b.EnergyPJ {
		t.Fatal("different sampling seeds produced identical raw measurements")
	}
}

// TestSampledValidation: schedules whose window span cannot fit the period
// are rejected up front.
func TestSampledValidation(t *testing.T) {
	cfg := sampledCfg(ArchBaseline)
	cfg.Sampling = Sampling{Period: 1_000, WindowInsts: 2_000, WarmupInsts: 500}
	if _, err := Run(cfg); err == nil {
		t.Fatal("span >= period was accepted")
	}
}

// TestSampledFrontendObservablesUnpolluted is the warming-pollution
// regression: frontend observables (prefetch effectiveness, demand L2 hit
// rate, branch volumes) must be computed over measurement windows only.
// If fast-forward warming leaked into them, the extrapolated volume
// counters would overshoot the exact run by roughly the inverse sampling
// fraction (~10x here), because warming touches every instruction of the
// stream while the windows cover a small fraction.
func TestSampledFrontendObservablesUnpolluted(t *testing.T) {
	// Volume counters are checked on the baseline core: every instruction
	// runs the front-end there, so the extrapolated counts must land near
	// the exact run's. (The Flywheel cores count branches only in
	// trace-creation mode, a small and window-biased fraction — volume
	// ratios are not meaningful for them.)
	cfg := sampledCfg(ArchBaseline)
	cfg.Prefetcher = "delta"
	exact, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Sampling = Sampling{Period: 30_000}
	sampled, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkRatio := func(name string, got, want uint64) {
		t.Helper()
		if want == 0 {
			return
		}
		r := float64(got) / float64(want)
		if r > 2 || r < 0.5 {
			t.Errorf("%s: sampled %d vs exact %d (ratio %.2f) — warming pollution?", name, got, want, r)
		}
	}
	checkRatio("CondBranches", sampled.CondBranches, exact.CondBranches)
	checkRatio("Mispredicts", sampled.Mispredicts, exact.Mispredicts)
	checkRatio("PrefetchIssued", sampled.PrefetchIssued, exact.PrefetchIssued)
	checkRatio("PrefetchUseful", sampled.PrefetchUseful, exact.PrefetchUseful)
	checkRates := func(arch Arch, sa, ex Result) {
		t.Helper()
		for name, pair := range map[string][2]float64{
			"PrefetchAccuracy": {sa.PrefetchAccuracy, ex.PrefetchAccuracy},
			"DemandL2HitRate":  {sa.DemandL2HitRate, ex.DemandL2HitRate},
			"BranchAccuracy":   {sa.BranchAccuracy, ex.BranchAccuracy},
		} {
			if math.Abs(pair[0]-pair[1]) > 0.15 {
				t.Errorf("%v %s: sampled %.3f vs exact %.3f", arch, name, pair[0], pair[1])
			}
		}
	}
	checkRates(ArchBaseline, sampled, exact)

	// Rate observables must also hold on a Flywheel core, where they are
	// computed over the (mostly replayed) measurement windows only.
	fcfg := sampledCfg(ArchFlywheel)
	fcfg.Prefetcher = "delta"
	fexact, err := Run(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	fcfg.Sampling = Sampling{Period: 30_000}
	fsampled, err := Run(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	checkRates(ArchFlywheel, fsampled, fexact)
}
