// Package sim assembles complete simulations: it picks the clock plan for a
// technology node from the cacti model, fast-forwards a workload to its
// measured phase, runs the chosen machine (baseline superscalar, Flywheel,
// or the Register-Allocation-only configuration), and attaches the energy
// model — producing the single-run results the experiment harness and the
// public API consume.
package sim

import (
	"fmt"

	"flywheel/internal/branch"
	"flywheel/internal/cacti"
	"flywheel/internal/core"
	"flywheel/internal/emu"
	"flywheel/internal/mem"
	"flywheel/internal/ooo"
	"flywheel/internal/power"
	"flywheel/internal/workload"
)

// Arch selects the machine to simulate.
type Arch int

// Machine architectures.
const (
	// ArchBaseline is the paper's fully synchronous superscalar
	// out-of-order baseline (Table 2).
	ArchBaseline Arch = iota
	// ArchFlywheel is the full proposal: dual-clock issue window,
	// execution cache, two-phase renaming.
	ArchFlywheel
	// ArchRegAlloc is Figure 11's intermediate configuration: dual-clock
	// issue window and the new register allocation without the EC.
	ArchRegAlloc
)

// String names the architecture.
func (a Arch) String() string {
	switch a {
	case ArchFlywheel:
		return "flywheel"
	case ArchRegAlloc:
		return "regalloc"
	default:
		return "baseline"
	}
}

// RunConfig describes one simulation.
type RunConfig struct {
	Workload string
	Arch     Arch
	// Node selects the technology point; it fixes the baseline clock (the
	// issue-window frequency) and the power model parameters.
	Node cacti.Node
	// FEBoostPct / BEBoostPct are the Flywheel clock-ratio sweep knobs
	// (§5): percentage speedup of the front-end domain and of the
	// trace-execution back-end over the baseline clock.
	FEBoostPct int
	BEBoostPct int
	// MaxInstructions bounds the measured dynamic instruction count
	// (after the workload's warm-up); 0 runs to completion.
	MaxInstructions uint64

	// Predictor selects the conditional-direction predictor ("" or
	// "gshare", "tage", "always-taken") and Prefetcher the L1↔L2
	// prefetcher ("" or "none", "delta") — the pluggable frontend axes.
	Predictor  string
	Prefetcher string

	// Figure 2 baseline variants.
	ExtraFrontEndStages   int
	PipelinedWakeupSelect bool

	// Sampling, when enabled (Period > 0), runs the simulation in sampled
	// mode: detailed windows at a systematic period over a fast-forwarded,
	// functionally warmed replay, with confidence intervals across the
	// windows in Result.Sampled. The zero value is exact execution.
	Sampling Sampling
}

// normalizeFrontend canonicalizes the frontend selections ("" becomes the
// defaults the paper models) and rejects unknown names.
func (c *RunConfig) normalizeFrontend() error {
	if !branch.KnownDirection(c.Predictor) {
		return fmt.Errorf("sim: unknown predictor %q (known: %v)", c.Predictor, branch.Directions())
	}
	if !mem.KnownPrefetcher(c.Prefetcher) {
		return fmt.Errorf("sim: unknown prefetcher %q (known: %v)", c.Prefetcher, mem.Prefetchers())
	}
	if c.Predictor == "" {
		c.Predictor = branch.DirGShare
	}
	if c.Prefetcher == "" {
		c.Prefetcher = mem.PFNone
	}
	return nil
}

// Result is one simulation outcome.
type Result struct {
	Config  RunConfig
	TimePS  int64
	Cycles  uint64
	Retired uint64
	IPC     float64

	// EnergyPJ and PowerW come from the power model at the run's node.
	EnergyPJ    float64
	PowerW      float64
	LeakageFrac float64

	// Flywheel-specific observables (zero for the baseline).
	ECResidency float64
	Divergences uint64
	TraceStats  core.ECStats

	Mispredicts    uint64
	BranchAccuracy float64

	// Frontend observables: conditional-branch volume (with Mispredicts it
	// lets accuracies aggregate across runs), prefetch effectiveness, and
	// the demand-side memory behaviour the prefetcher is meant to improve.
	CondBranches     uint64
	PrefetchIssued   uint64
	PrefetchUseful   uint64
	PrefetchLate     uint64
	PrefetchAccuracy float64
	PrefetchCoverage float64
	AvgDataCycles    float64
	DemandL2HitRate  float64

	// Full per-core statistics for detailed reporting. Nil for sampled
	// runs: cumulative core counters mix warm-up and measurement intervals
	// there, so only the window-delta aggregates above are meaningful.
	Baseline *ooo.Stats
	Flywheel *core.Stats

	// Sampled is present only for sampled runs (RunConfig.Sampling
	// enabled): window coverage and per-metric confidence intervals.
	Sampled *SampledStats
}

// Speedup returns other's execution time divided by r's (how much faster r
// is than other).
func (r Result) Speedup(other Result) float64 {
	if r.TimePS == 0 {
		return 0
	}
	return float64(other.TimePS) / float64(r.TimePS)
}

// Run executes one simulation. The first run of a workload executes its
// initialization phase once and caches the result as a copy-on-write warm
// snapshot; every later run — any architecture, boost, node or instruction
// budget — clones the snapshot and replays the recorded warm observations
// instead of re-executing initialization (see snapshot.go).
func Run(cfg RunConfig) (Result, error) {
	w, err := workload.Get(cfg.Workload)
	if err != nil {
		return Result{}, err
	}
	if cfg.Node == 0 {
		cfg.Node = cacti.Node130
	}
	if err := cfg.normalizeFrontend(); err != nil {
		return Result{}, err
	}
	cfg.Sampling = cfg.Sampling.Normalize()
	if err := cfg.Sampling.Validate(); err != nil {
		return Result{}, err
	}
	ws, err := workloadSnapshot(w)
	if err != nil {
		return Result{}, err
	}
	if cfg.Sampling.Enabled() {
		return runSampled(cfg, w, ws)
	}
	// The instruction stream comes from the trace cache: the first run of a
	// workload records the functional emulator's output while consuming it,
	// later runs replay the recording (see tracecache.go).
	stream, finish, err := acquireSource(w, ws, cfg.MaxInstructions)
	if err != nil {
		return Result{}, err
	}
	// finish must run exactly once on every exit — including a panic in a
	// timing core (the lab recovers panics into error results, so without
	// this a recording would stay in-progress forever and concurrent
	// replayers of it would block indefinitely).
	finished := false
	defer func() {
		if !finished {
			finish(fmt.Errorf("sim %s/%s: run aborted", cfg.Workload, cfg.Arch))
		}
	}()
	period := cacti.BaselinePeriodPS(cfg.Node)

	tech, err := power.Tech(cfg.Node)
	if err != nil {
		finish(err)
		finished = true
		return Result{}, err
	}

	// Functional warming: seed the core's caches and branch predictor with
	// the initialization phase's recorded observations so measurement
	// starts from realistic state (the paper fast-forwards 500M
	// instructions).
	res := Result{Config: cfg}
	runErr := func() error {
		switch cfg.Arch {
		case ArchBaseline:
			bc := baselineConfig(cfg, period)
			c := ooo.New(bc, stream)
			if err := ws.warm(c.Warmer(), w, bc.Mem, bc.Branch); err != nil {
				return err
			}
			stats, err := c.Run()
			if err != nil {
				return fmt.Errorf("sim %s/%s: %w", cfg.Workload, cfg.Arch, err)
			}
			rep := power.Compute(baselineActivity(stats), power.BaselineShape(), tech)
			res.TimePS = stats.TimePS
			res.Cycles = stats.Cycles
			res.Retired = stats.Retired
			res.IPC = stats.IPC
			res.Mispredicts = stats.Mispredicts
			res.BranchAccuracy = stats.BranchAccuracy
			res.fillFrontend(stats.CondBranches, stats.Prefetch, stats.Demand)
			res.EnergyPJ = rep.TotalPJ
			res.PowerW = rep.AvgPowerW
			res.LeakageFrac = rep.LeakageFrac
			res.Baseline = &stats
		case ArchFlywheel, ArchRegAlloc:
			fc := flywheelConfig(cfg, period)
			c := core.New(fc, stream)
			if err := ws.warm(c.Warmer(), w, fc.Mem, fc.Branch); err != nil {
				return err
			}
			stats, err := c.Run()
			if err != nil {
				return fmt.Errorf("sim %s/%s: %w", cfg.Workload, cfg.Arch, err)
			}
			rep := power.Compute(stats.Activity(), power.FlywheelShape(), tech)
			res.TimePS = stats.TimePS
			res.Cycles = stats.Cycles()
			res.Retired = stats.Retired
			res.IPC = stats.IPC
			res.Mispredicts = stats.Mispredicts
			res.BranchAccuracy = stats.BranchAccuracy
			res.fillFrontend(stats.CondBranches, stats.Prefetch, stats.Demand)
			res.ECResidency = stats.ECResidency
			res.Divergences = stats.Divergences
			res.TraceStats = stats.EC
			res.EnergyPJ = rep.TotalPJ
			res.PowerW = rep.AvgPowerW
			res.LeakageFrac = rep.LeakageFrac
			res.Flywheel = &stats
		default:
			return fmt.Errorf("sim: unknown architecture %d", cfg.Arch)
		}
		return nil
	}()
	finish(runErr)
	finished = true
	if runErr != nil {
		return Result{}, runErr
	}
	return res, nil
}

func baselineConfig(cfg RunConfig, period int64) ooo.Config {
	c := ooo.DefaultConfig()
	c.PeriodPS = period
	c.Mem = mem.DefaultHierarchyConfig(period)
	c.Branch.Direction, c.Mem.Prefetch = frontendFor(cfg)
	c.ExtraFrontEndStages = cfg.ExtraFrontEndStages
	c.PipelinedWakeupSelect = cfg.PipelinedWakeupSelect
	c.MaxCycles = 500_000_000
	return c
}

func flywheelConfig(cfg RunConfig, period int64) core.Config {
	c := core.DefaultConfig()
	c.BasePeriodPS = period
	c.Mem = mem.DefaultHierarchyConfig(period)
	c.Branch.Direction, c.Mem.Prefetch = frontendFor(cfg)
	c.FEBoostPct = cfg.FEBoostPct
	c.BEBoostPct = cfg.BEBoostPct
	c.ECEnabled = cfg.Arch == ArchFlywheel
	c.MaxCycles = 500_000_000
	return c
}

// frontendFor maps the run's (already normalized) frontend selections onto
// the core configuration knobs.
func frontendFor(cfg RunConfig) (direction string, pf mem.PrefetchConfig) {
	direction = cfg.Predictor
	if direction == "" {
		direction = branch.DirGShare
	}
	return direction, mem.DefaultPrefetchConfig(cfg.Prefetcher)
}

// fillFrontend copies the frontend observables into the result.
func (r *Result) fillFrontend(cond uint64, pf mem.PrefetchStats, dm mem.DemandStats) {
	r.CondBranches = cond
	r.PrefetchIssued = pf.Issued
	r.PrefetchUseful = pf.Useful
	r.PrefetchLate = pf.Late
	r.PrefetchAccuracy = pf.Accuracy()
	r.PrefetchCoverage = pf.Coverage()
	r.AvgDataCycles = dm.AvgDataCycles()
	r.DemandL2HitRate = dm.L2HitRate()
}

// baselineActivity converts baseline statistics into the power model's
// event record. The baseline is a single clock domain; its grid is modelled
// as global + front-end + back-end local grids all ticking every cycle.
func baselineActivity(s ooo.Stats) power.Activity {
	return power.Activity{
		TimePS:      s.TimePS,
		FECycles:    s.Cycles,
		BECycles:    s.Cycles,
		FetchGroups: s.FetchGroups,
		Fetched:     s.Fetched,
		Renamed:     s.Dispatched,
		BPLookups:   s.PredLookups,
		BPUpdates:   s.PredUpdates,
		IWInserts:   s.IWInserted,
		IWSelects:   s.IWSelected,
		RegReads:    s.RegReads,
		RegWrites:   s.RegWrites,
		FUOps:       s.FUIssued,
		ROBWrites:   s.Dispatched,
		Retires:     s.Retired,
		LSQOps:      s.L1D.Accesses() + s.Forwards,
		L1I:         s.L1I,
		L1D:         s.L1D,
		L2:          s.L2,
	}
}

// RunSource assembles the given program text and runs it like Run does for
// a registered workload (no warm-up: the whole program is measured). The
// Workload field of cfg is used only for labeling. Assembly and image
// loading are cached per (name, source) pair; each run clones the cached
// snapshot copy-on-write.
func RunSource(name, source string, cfg RunConfig) (Result, error) {
	ws, err := sourceSnapshot(name, source)
	if err != nil {
		return Result{}, err
	}
	if cfg.Node == 0 {
		cfg.Node = cacti.Node130
	}
	if err := cfg.normalizeFrontend(); err != nil {
		return Result{}, err
	}
	if cfg.Sampling.Enabled() {
		return Result{}, fmt.Errorf("sim: sampled execution needs the trace-cache path; RunSource is exact-only")
	}
	m := ws.machine()
	limit := cfg.MaxInstructions
	stream := emu.NewStream(m, limit)
	period := cacti.BaselinePeriodPS(cfg.Node)
	tech, err := power.Tech(cfg.Node)
	if err != nil {
		return Result{}, err
	}
	res := Result{Config: cfg}
	switch cfg.Arch {
	case ArchBaseline:
		c := ooo.New(baselineConfig(cfg, period), stream)
		stats, err := c.Run()
		if err != nil {
			return Result{}, fmt.Errorf("sim %s/%s: %w", name, cfg.Arch, err)
		}
		rep := power.Compute(baselineActivity(stats), power.BaselineShape(), tech)
		res.TimePS, res.Cycles, res.Retired, res.IPC = stats.TimePS, stats.Cycles, stats.Retired, stats.IPC
		res.Mispredicts, res.BranchAccuracy = stats.Mispredicts, stats.BranchAccuracy
		res.fillFrontend(stats.CondBranches, stats.Prefetch, stats.Demand)
		res.EnergyPJ, res.PowerW, res.LeakageFrac = rep.TotalPJ, rep.AvgPowerW, rep.LeakageFrac
		res.Baseline = &stats
	case ArchFlywheel, ArchRegAlloc:
		c := core.New(flywheelConfig(cfg, period), stream)
		stats, err := c.Run()
		if err != nil {
			return Result{}, fmt.Errorf("sim %s/%s: %w", name, cfg.Arch, err)
		}
		rep := power.Compute(stats.Activity(), power.FlywheelShape(), tech)
		res.TimePS, res.Cycles, res.Retired, res.IPC = stats.TimePS, stats.Cycles(), stats.Retired, stats.IPC
		res.Mispredicts, res.BranchAccuracy = stats.Mispredicts, stats.BranchAccuracy
		res.fillFrontend(stats.CondBranches, stats.Prefetch, stats.Demand)
		res.ECResidency, res.Divergences, res.TraceStats = stats.ECResidency, stats.Divergences, stats.EC
		res.EnergyPJ, res.PowerW, res.LeakageFrac = rep.TotalPJ, rep.AvgPowerW, rep.LeakageFrac
		res.Flywheel = &stats
	default:
		return Result{}, fmt.Errorf("sim: unknown architecture %d", cfg.Arch)
	}
	return res, nil
}
