package sim

import (
	"testing"

	"flywheel/internal/cacti"
)

func TestSingleRunCompletes(t *testing.T) {
	res, err := Run(RunConfig{
		Workload: "ijpeg", Arch: ArchFlywheel, Node: cacti.Node130,
		FEBoostPct: 50, BEBoostPct: 50, MaxInstructions: 50_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retired < 50_000 {
		t.Errorf("retired %d", res.Retired)
	}
	t.Logf("time=%dps ipc=%.2f resid=%.2f", res.TimePS, res.IPC, res.ECResidency)
}
