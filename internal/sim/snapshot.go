package sim

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"flywheel/internal/asm"
	"flywheel/internal/branch"
	"flywheel/internal/emu"
	"flywheel/internal/mem"
	"flywheel/internal/pipe"
	"flywheel/internal/workload"
)

// The warm-snapshot cache makes per-run setup O(1) after the first run of a
// workload. Previously every simulation executed a workload's
// initialization phase twice on a functional emulator — once in
// workload.NewMachine to fast-forward the measured machine and once more in
// the warm() replay that seeds the caches and branch predictor — for every
// grid point of every sweep. Now the first run executes initialization
// once, recording the warm observations and capturing the architectural
// state as a copy-on-write snapshot; every later run clones the snapshot
// (an O(pages-touched-later) copy-on-write clone) and replays the recorded
// observations into its own warmer, never touching the functional
// initialization path again.

// warmSnapshot is the cached one-time work for a workload.
type warmSnapshot struct {
	snap *emu.Snapshot
	// log holds the recorded warm observations; nil when the
	// initialization phase was too long to record (see
	// pipe.MaxWarmLogRecords), in which case runs fall back to functional
	// re-execution for warming.
	log *pipe.WarmLog
}

// snapEntry is one cache slot, built at most once.
type snapEntry struct {
	once sync.Once
	ws   *warmSnapshot
	err  error
}

var (
	snapCache  sync.Map // cache key (string) -> *snapEntry
	snapHits   atomic.Uint64
	snapMisses atomic.Uint64
)

// SnapshotCacheStats reports how many simulation setups were served from
// the warm-snapshot cache (hits) versus built by executing a workload's
// initialization phase (misses).
func SnapshotCacheStats() (hits, misses uint64) {
	return snapHits.Load(), snapMisses.Load()
}

// ResetSnapshotCache drops every cached snapshot and zeroes the hit/miss
// counters (for tests and benchmarks that measure cold-start behaviour).
// The per-workload init execution itself (workload.WarmState) is once per
// process and is not re-run after a reset; a post-reset miss rebuilds the
// cache entry from the workload's frozen state.
func ResetSnapshotCache() {
	snapCache.Range(func(k, _ any) bool {
		snapCache.Delete(k)
		return true
	})
	snapHits.Store(0)
	snapMisses.Store(0)
	sourceSnapCount.Store(0)
	resetWarmStates()
}

// cachedSnapshot returns the entry for key, building it at most once via
// build; concurrent callers for the same key share one execution
// (singleflight) and every subsequent call is a cache hit.
func cachedSnapshot(key string, build func() (*warmSnapshot, error)) (*warmSnapshot, error) {
	e, _ := snapCache.LoadOrStore(key, &snapEntry{})
	entry := e.(*snapEntry)
	built := false
	entry.once.Do(func() {
		built = true
		snapMisses.Add(1)
		entry.ws, entry.err = build()
	})
	if !built {
		snapHits.Add(1)
	}
	if entry.err != nil {
		return nil, entry.err
	}
	return entry.ws, nil
}

// workloadSnapshot builds or fetches the warm snapshot of a registered
// workload. The one-time init execution lives in workload.WarmState (shared
// with Workload.NewMachine, so mixed NewMachine/sim.Run callers never
// fast-forward twice); this cache layer only adds the hit/miss accounting.
// The registry guarantees a name maps to one source text for the life of
// the process, so the name is a sound cache key.
func workloadSnapshot(w *workload.Workload) (*warmSnapshot, error) {
	return cachedSnapshot("workload\x00"+w.Name, func() (*warmSnapshot, error) {
		snap, log, err := w.WarmState()
		if err != nil {
			return nil, err
		}
		return &warmSnapshot{snap: snap, log: log}, nil
	})
}

// maxSourceSnapshots bounds how many distinct ad-hoc programs the source
// cache retains. A caller streaming unique programs (a fuzzer, a sweep over
// generated kernels not registered as workloads) would otherwise grow the
// cache — each entry pins the source text, the assembled program and its
// frozen pages — without bound. Past the cap the source-keyed entries are
// dropped wholesale (registered workloads are unaffected), trading one
// re-assembly per dropped program for bounded memory.
const maxSourceSnapshots = 1024

// sourceSnapCount approximately tracks live source-keyed entries; racing
// inserts may overshoot the cap by a few entries, which is harmless.
var sourceSnapCount atomic.Int64

// sourceSnapshot builds or fetches the load-image snapshot of an ad-hoc
// program (RunSource): assembly and code-image encoding happen once per
// distinct (name, source) pair, and each run starts from a copy-on-write
// clone. Ad-hoc programs have no warm-up phase, so the log stays empty.
func sourceSnapshot(name, source string) (*warmSnapshot, error) {
	key := "source\x00" + name + "\x00" + source
	if _, ok := snapCache.Load(key); !ok && sourceSnapCount.Load() >= maxSourceSnapshots {
		snapCache.Range(func(k, _ any) bool {
			if ks := k.(string); strings.HasPrefix(ks, "source\x00") {
				snapCache.Delete(k)
			}
			return true
		})
		sourceSnapCount.Store(0)
	}
	return cachedSnapshot(key, func() (*warmSnapshot, error) {
		sourceSnapCount.Add(1)
		prog, err := asm.Assemble(name, source)
		if err != nil {
			return nil, err
		}
		return &warmSnapshot{snap: emu.New(prog).Snapshot(), log: &pipe.WarmLog{}}, nil
	})
}

// machine clones a runnable functional machine from the snapshot.
func (ws *warmSnapshot) machine() *emu.Machine { return ws.snap.NewMachine() }

// warmState is a fully warmed predictor + cache hierarchy, built once per
// (workload, hierarchy config, predictor config) by replaying the recorded
// warm log, then copied into each run's core as a pair of memcpys.
type warmState struct {
	pred *branch.Predictor
	hier *mem.Hierarchy
}

type warmStateKey struct {
	workload string
	hier     mem.HierarchyConfig
	branch   branch.Config
}

type warmStateEntry struct {
	once sync.Once
	st   *warmState
}

var warmStates sync.Map // warmStateKey -> *warmStateEntry

// resetWarmStates drops the warmed-state templates (paired with
// ResetSnapshotCache).
func resetWarmStates() {
	warmStates.Range(func(k, _ any) bool {
		warmStates.Delete(k)
		return true
	})
}

// template returns the warmed predictor/hierarchy template for the given
// configuration, replaying the log at most once per configuration.
func (ws *warmSnapshot) template(w *workload.Workload, hierCfg mem.HierarchyConfig, branchCfg branch.Config) *warmState {
	key := warmStateKey{workload: w.Name, hier: hierCfg, branch: branchCfg}
	e, _ := warmStates.LoadOrStore(key, &warmStateEntry{})
	entry := e.(*warmStateEntry)
	entry.once.Do(func() {
		st := &warmState{pred: branch.New(branchCfg), hier: mem.NewHierarchy(hierCfg)}
		ws.log.Replay(pipe.NewWarmer(st.pred, st.hier))
		entry.st = st
	})
	return entry.st
}

// warm seeds a core's caches and branch predictor with the workload's
// initialization-phase observations: a state copy from the warmed template
// when the log was recorded, or a functional re-execution fallback (the
// pre-cache behaviour) when it overflowed.
func (ws *warmSnapshot) warm(warmer *pipe.Warmer, w *workload.Workload, hierCfg mem.HierarchyConfig, branchCfg branch.Config) error {
	if w == nil || w.WarmAddr() == 0 {
		return nil
	}
	if ws.log != nil {
		st := ws.template(w, hierCfg, branchCfg)
		warmer.SeedFrom(st.pred, st.hier)
		return nil
	}
	wm := emu.New(w.Program())
	for wm.PC != w.WarmAddr() && !wm.Halted && wm.Retired < workload.WarmUpLimit {
		tr, err := wm.Step()
		if err != nil {
			return fmt.Errorf("sim warm %s: %w", w.Name, err)
		}
		warmer.Observe(tr)
	}
	warmer.Finish()
	return nil
}
