package sim

import (
	"fmt"
	"sync"

	"flywheel/internal/asm"
	"flywheel/internal/branch"
	"flywheel/internal/emu"
	"flywheel/internal/mem"
	"flywheel/internal/pipe"
	"flywheel/internal/workload"
)

// The warm-snapshot cache makes per-run setup O(1) after the first run of a
// workload. Previously every simulation executed a workload's
// initialization phase twice on a functional emulator — once in
// workload.NewMachine to fast-forward the measured machine and once more in
// the warm() replay that seeds the caches and branch predictor — for every
// grid point of every sweep. Now the first run executes initialization
// once, recording the warm observations and capturing the architectural
// state as a copy-on-write snapshot; every later run clones the snapshot
// (an O(pages-touched-later) copy-on-write clone) and replays the recorded
// observations into its own warmer, never touching the functional
// initialization path again.
//
// The cache is bounded: entry-count and byte caps evict complete entries
// least-recently-used first (in-flight builds are never evicted), so a
// caller streaming unbounded distinct programs — a fuzzer, a generator
// sweep — trades re-assembly for bounded memory instead of growing without
// limit. Eviction is invisible to correctness: an evicted key rebuilds on
// the next request, and concurrent holders of the evicted entry keep their
// references.

// SnapshotCachePolicy bounds the warm-snapshot cache.
type SnapshotCachePolicy struct {
	// MaxEntries caps the number of cached snapshots; zero or negative
	// means DefaultSnapshotMaxEntries.
	MaxEntries int
	// MaxBytes caps the estimated resident footprint (frozen memory pages
	// plus recorded warm observations); zero or negative means
	// DefaultSnapshotMaxBytes.
	MaxBytes int64
}

// Default snapshot-cache bounds.
const (
	DefaultSnapshotMaxEntries = 1024
	DefaultSnapshotMaxBytes   = int64(512) << 20
)

func (p SnapshotCachePolicy) maxEntries() int {
	if p.MaxEntries <= 0 {
		return DefaultSnapshotMaxEntries
	}
	return p.MaxEntries
}

func (p SnapshotCachePolicy) maxBytes() int64 {
	if p.MaxBytes <= 0 {
		return DefaultSnapshotMaxBytes
	}
	return p.MaxBytes
}

// SnapshotCacheInfo is a snapshot of the cache counters.
type SnapshotCacheInfo struct {
	Hits, Misses, Evictions uint64
	Entries                 int
	Bytes                   int64
}

// warmSnapshot is the cached one-time work for a workload.
type warmSnapshot struct {
	snap *emu.Snapshot
	// log holds the recorded warm observations; nil when the
	// initialization phase was too long to record (see
	// pipe.MaxWarmLogRecords), in which case runs fall back to functional
	// re-execution for warming.
	log *pipe.WarmLog
}

// bytes estimates the snapshot's resident footprint.
func (ws *warmSnapshot) bytes() int64 {
	b := int64(ws.snap.MemPages()) * 4096
	if ws.log != nil {
		b += int64(ws.log.Len()) * 48 // sizeof(emu.Trace), near enough
	}
	return b
}

// snapEntry is one cache slot, built at most once.
type snapEntry struct {
	once  sync.Once
	ws    *warmSnapshot
	err   error
	bytes int64
	used  uint64 // LRU stamp, under snapMu
	built bool   // accounting done, under snapMu
}

var (
	snapMu     sync.Mutex
	snapCache  = map[string]*snapEntry{}
	snapPolicy SnapshotCachePolicy
	snapClock  uint64
	snapBytes  int64
	snapHits   uint64
	snapMisses uint64
	snapEvicts uint64
)

// SetSnapshotCachePolicy replaces the cache bounds; lowering them evicts
// immediately.
func SetSnapshotCachePolicy(p SnapshotCachePolicy) {
	snapMu.Lock()
	defer snapMu.Unlock()
	snapPolicy = p
	evictSnapshotsLocked()
}

// SnapshotCacheStats reports how many simulation setups were served from
// the warm-snapshot cache (hits) versus built by executing a workload's
// initialization phase (misses).
func SnapshotCacheStats() (hits, misses uint64) {
	snapMu.Lock()
	defer snapMu.Unlock()
	return snapHits, snapMisses
}

// SnapshotCacheInfoNow reports the full cache counters.
func SnapshotCacheInfoNow() SnapshotCacheInfo {
	snapMu.Lock()
	defer snapMu.Unlock()
	return SnapshotCacheInfo{
		Hits: snapHits, Misses: snapMisses, Evictions: snapEvicts,
		Entries: len(snapCache), Bytes: snapBytes,
	}
}

// ResetSnapshotCache drops every cached snapshot and zeroes the hit/miss
// counters (for tests and benchmarks that measure cold-start behaviour).
// The per-workload init execution itself (workload.WarmState) is once per
// process and is not re-run after a reset; a post-reset miss rebuilds the
// cache entry from the workload's frozen state.
func ResetSnapshotCache() {
	snapMu.Lock()
	snapCache = map[string]*snapEntry{}
	snapBytes = 0
	snapClock = 0
	snapHits, snapMisses, snapEvicts = 0, 0, 0
	snapMu.Unlock()
	resetWarmStates()
}

// evictSnapshotsLocked enforces the caps, least-recently-used first.
// Entries still building are skipped (their cost is unknown and a waiter
// holds them anyway).
func evictSnapshotsLocked() {
	maxE, maxB := snapPolicy.maxEntries(), snapPolicy.maxBytes()
	for len(snapCache) > maxE || snapBytes > maxB {
		var victim string
		var oldest uint64
		found := false
		for k, e := range snapCache {
			if !e.built {
				continue
			}
			if !found || e.used < oldest {
				victim, oldest, found = k, e.used, true
			}
		}
		if !found {
			return
		}
		snapBytes -= snapCache[victim].bytes
		delete(snapCache, victim)
		snapEvicts++
	}
}

// cachedSnapshot returns the entry for key, building it at most once via
// build; concurrent callers for the same key share one execution
// (singleflight) and every later call is a cache hit until the entry is
// evicted by the caps.
func cachedSnapshot(key string, build func() (*warmSnapshot, error)) (*warmSnapshot, error) {
	snapMu.Lock()
	snapClock++
	e, ok := snapCache[key]
	if ok {
		e.used = snapClock
		snapHits++
	} else {
		e = &snapEntry{used: snapClock}
		snapCache[key] = e
		snapMisses++
	}
	snapMu.Unlock()

	e.once.Do(func() {
		e.ws, e.err = build()
		snapMu.Lock()
		e.built = true
		if e.err == nil {
			e.bytes = e.ws.bytes()
			snapBytes += e.bytes
			evictSnapshotsLocked()
		} else {
			// Failed builds are not worth caching past their flight.
			if snapCache[key] == e {
				delete(snapCache, key)
			}
		}
		snapMu.Unlock()
	})
	if e.err != nil {
		return nil, e.err
	}
	return e.ws, nil
}

// workloadSnapshot builds or fetches the warm snapshot of a registered
// workload. The one-time init execution lives in workload.WarmState (shared
// with Workload.NewMachine, so mixed NewMachine/sim.Run callers never
// fast-forward twice); this cache layer adds the hit/miss accounting and
// the caps. The registry guarantees a name maps to one source text for the
// life of the process, so the name is a sound cache key.
func workloadSnapshot(w *workload.Workload) (*warmSnapshot, error) {
	return cachedSnapshot("workload\x00"+w.Name, func() (*warmSnapshot, error) {
		snap, log, err := w.WarmState()
		if err != nil {
			return nil, err
		}
		return &warmSnapshot{snap: snap, log: log}, nil
	})
}

// sourceSnapshot builds or fetches the load-image snapshot of an ad-hoc
// program (RunSource): assembly and code-image encoding happen once per
// distinct (name, source) pair, and each run starts from a copy-on-write
// clone. Ad-hoc programs have no warm-up phase, so the log stays empty.
// A caller streaming unique programs is bounded by the cache caps.
func sourceSnapshot(name, source string) (*warmSnapshot, error) {
	return cachedSnapshot("source\x00"+name+"\x00"+source, func() (*warmSnapshot, error) {
		prog, err := asm.Assemble(name, source)
		if err != nil {
			return nil, err
		}
		return &warmSnapshot{snap: emu.New(prog).Snapshot(), log: &pipe.WarmLog{}}, nil
	})
}

// machine clones a runnable functional machine from the snapshot.
func (ws *warmSnapshot) machine() *emu.Machine { return ws.snap.NewMachine() }

// warmState is a fully warmed predictor + cache hierarchy, built once per
// (workload, hierarchy config, predictor config) by replaying the recorded
// warm log, then copied into each run's core as a pair of memcpys.
type warmState struct {
	pred *branch.Predictor
	hier *mem.Hierarchy
}

type warmStateKey struct {
	workload string
	hier     mem.HierarchyConfig
	branch   branch.Config
}

type warmStateEntry struct {
	once sync.Once
	st   *warmState
}

var warmStates sync.Map // warmStateKey -> *warmStateEntry

// resetWarmStates drops the warmed-state templates (paired with
// ResetSnapshotCache).
func resetWarmStates() {
	warmStates.Range(func(k, _ any) bool {
		warmStates.Delete(k)
		return true
	})
}

// template returns the warmed predictor/hierarchy template for the given
// configuration, replaying the log at most once per configuration.
func (ws *warmSnapshot) template(w *workload.Workload, hierCfg mem.HierarchyConfig, branchCfg branch.Config) *warmState {
	key := warmStateKey{workload: w.Name, hier: hierCfg, branch: branchCfg}
	e, _ := warmStates.LoadOrStore(key, &warmStateEntry{})
	entry := e.(*warmStateEntry)
	entry.once.Do(func() {
		st := &warmState{pred: branch.New(branchCfg), hier: mem.NewHierarchy(hierCfg)}
		ws.log.Replay(pipe.NewWarmer(st.pred, st.hier))
		entry.st = st
	})
	return entry.st
}

// warm seeds a core's caches and branch predictor with the workload's
// initialization-phase observations: a state copy from the warmed template
// when the log was recorded, or a functional re-execution fallback (the
// pre-cache behaviour) when it overflowed.
func (ws *warmSnapshot) warm(warmer *pipe.Warmer, w *workload.Workload, hierCfg mem.HierarchyConfig, branchCfg branch.Config) error {
	if w == nil || w.WarmAddr() == 0 {
		return nil
	}
	if ws.log != nil {
		st := ws.template(w, hierCfg, branchCfg)
		warmer.SeedFrom(st.pred, st.hier)
		return nil
	}
	wm := emu.New(w.Program())
	for wm.PC != w.WarmAddr() && !wm.Halted && wm.Retired < workload.WarmUpLimit {
		tr, err := wm.Step()
		if err != nil {
			return fmt.Errorf("sim warm %s: %w", w.Name, err)
		}
		warmer.Observe(tr)
	}
	warmer.Finish()
	return nil
}
