package sim

import (
	"fmt"
	"reflect"
	"testing"

	"flywheel/internal/cacti"
)

// TestCappedSnapshotCacheStaysCorrect pins the eviction contract: a
// snapshot cache squeezed to a tiny entry cap must keep producing results
// byte-identical to the uncapped cache — evictions only cost rebuild time.
func TestCappedSnapshotCacheStaysCorrect(t *testing.T) {
	defer func() {
		SetSnapshotCachePolicy(SnapshotCachePolicy{})
		ResetSnapshotCache()
	}()

	// Ad-hoc programs (RunSource) exercise the source-keyed entries, which
	// are the unbounded-growth risk the cap exists for.
	src := func(i int) (string, string) {
		return fmt.Sprintf("cap-test-%d", i), fmt.Sprintf(`
        .data
buf:    .space 64
        .text
        la   r2, buf
        li   r1, %d
loop:   ld   r3, 0(r2)
        addi r3, r3, %d
        sd   r3, 0(r2)
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
`, 200+i, 1+i)
	}
	cfg := RunConfig{Arch: ArchBaseline, Node: cacti.Node130}

	run := func() []Result {
		ResetSnapshotCache()
		var out []Result
		// Interleave revisits so the LRU actually evicts and rebuilds.
		for _, i := range []int{0, 1, 2, 3, 0, 1, 4, 5, 0, 2} {
			name, text := src(i)
			res, err := RunSource(name, text, cfg)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, res)
		}
		return out
	}

	SetSnapshotCachePolicy(SnapshotCachePolicy{})
	uncapped := run()

	SetSnapshotCachePolicy(SnapshotCachePolicy{MaxEntries: 2})
	capped := run()
	info := SnapshotCacheInfoNow()
	if info.Evictions == 0 {
		t.Fatalf("entry cap 2 over 6 programs must evict, stats: %+v", info)
	}
	if info.Entries > 2 {
		t.Fatalf("cache holds %d entries, cap is 2", info.Entries)
	}

	if !reflect.DeepEqual(uncapped, capped) {
		t.Fatal("capped snapshot cache changed simulation results")
	}
}

// TestSnapshotByteCapEvicts drives the byte cap instead of the entry cap.
func TestSnapshotByteCapEvicts(t *testing.T) {
	defer func() {
		SetSnapshotCachePolicy(SnapshotCachePolicy{})
		ResetSnapshotCache()
	}()
	SetSnapshotCachePolicy(SnapshotCachePolicy{MaxBytes: 1}) // nothing fits
	ResetSnapshotCache()
	cfg := RunConfig{Arch: ArchBaseline, Node: cacti.Node130}
	for i := 0; i < 3; i++ {
		if _, err := RunSource("bytecap", "\t.text\n\taddi r1, r0, 1\n\thalt\n", cfg); err != nil {
			t.Fatal(err)
		}
	}
	info := SnapshotCacheInfoNow()
	if info.Evictions == 0 {
		t.Fatalf("byte cap 1 must evict every build, stats: %+v", info)
	}
}
