package sim

import (
	"reflect"
	"runtime"
	"testing"

	"flywheel/internal/cacti"
)

func snapCfg(arch Arch, node cacti.Node) RunConfig {
	return RunConfig{
		Workload: "ijpeg", Arch: arch, Node: node,
		FEBoostPct: 50, BEBoostPct: 50, MaxInstructions: 5_000,
	}
}

// TestSnapshotCacheHitCounters asserts the tentpole's O(1)-setup property:
// the first run of a workload builds its warm snapshot (one miss), and
// every later run — any architecture or node — is served from the cache
// with no init-phase re-execution.
func TestSnapshotCacheHitCounters(t *testing.T) {
	ResetSnapshotCache()
	if _, err := Run(snapCfg(ArchBaseline, cacti.Node130)); err != nil {
		t.Fatal(err)
	}
	hits, misses := SnapshotCacheStats()
	if misses != 1 {
		t.Fatalf("first run: misses=%d, want 1", misses)
	}
	if hits != 0 {
		t.Fatalf("first run: hits=%d, want 0", hits)
	}
	// Second run: different arch and node, same workload — still a hit.
	if _, err := Run(snapCfg(ArchFlywheel, cacti.Node90)); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(snapCfg(ArchBaseline, cacti.Node130)); err != nil {
		t.Fatal(err)
	}
	hits, misses = SnapshotCacheStats()
	if misses != 1 {
		t.Fatalf("after 3 runs: misses=%d, want 1 (init executed once)", misses)
	}
	if hits != 2 {
		t.Fatalf("after 3 runs: hits=%d, want 2", hits)
	}
}

// TestSnapshotCacheDeterminism checks that a cache-served run is
// numerically identical to a cold run: the snapshot/seed path must not
// perturb any observable.
func TestSnapshotCacheDeterminism(t *testing.T) {
	for _, arch := range []Arch{ArchBaseline, ArchFlywheel, ArchRegAlloc} {
		ResetSnapshotCache()
		cold, err := Run(snapCfg(arch, cacti.Node130))
		if err != nil {
			t.Fatal(err)
		}
		warm, err := Run(snapCfg(arch, cacti.Node130))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cold, warm) {
			t.Fatalf("%v: cache-served run differs from cold run:\ncold: %+v\nwarm: %+v",
				arch, cold, warm)
		}
	}
}

// TestRunSourceSnapshotCache checks the ad-hoc-program path: assembly and
// image loading happen once per distinct source.
func TestRunSourceSnapshotCache(t *testing.T) {
	ResetSnapshotCache()
	src := `
        li   r1, 64
loop:   addi r1, r1, -1
        bne  r1, r0, loop
        halt
`
	cfg := RunConfig{Arch: ArchBaseline, Node: cacti.Node130}
	r1, err := RunSource("snaptest", src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunSource("snaptest", src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := SnapshotCacheStats()
	if misses != 1 || hits != 1 {
		t.Fatalf("RunSource cache: hits=%d misses=%d, want 1/1", hits, misses)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("cached RunSource differs from cold RunSource")
	}
}

// TestRunSteadyStateAllocs is the whole-pipeline allocation regression
// fence: a cache-served simulation of tens of thousands of instructions
// must stay in the same few-thousand-allocation band (fixed core setup),
// nowhere near the ~5 allocations per instruction of the pre-arena design.
func TestRunSteadyStateAllocs(t *testing.T) {
	const instructions = 40_000
	cfg := RunConfig{
		Workload: "ijpeg", Arch: ArchBaseline, Node: cacti.Node130,
		MaxInstructions: instructions,
	}
	// Prime the snapshot cache so the measurement sees steady state.
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)

	allocs := after.Mallocs - before.Mallocs
	perInst := float64(allocs) / float64(res.Retired)
	t.Logf("run: %d allocs for %d retired (%.4f allocs/inst)", allocs, res.Retired, perInst)
	// Fixed setup (core structures, arena, result) plus slack; the budget
	// is ~0.2 allocs/inst where the old hot loop paid ~5.
	if perInst > 0.2 {
		t.Fatalf("steady-state allocations regressed: %.3f allocs/inst (%d total), want <= 0.2",
			perInst, allocs)
	}
}
