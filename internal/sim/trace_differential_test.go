package sim

import (
	"reflect"
	"testing"

	"flywheel/internal/cacti"
	"flywheel/internal/emu"
	"flywheel/internal/trace"
	"flywheel/internal/workload"
	"flywheel/internal/workload/synth"
)

// The trace cache's whole claim is "replay is indistinguishable from live
// execution". These tests pin it at both layers: the record stream itself
// (byte-identical emu.Trace records, order and early-halt behavior) and
// whole simulation results across every architecture with the cache on
// versus off.

// diffWorkloads returns a paper workload and two seeded synthetic ones
// (distinct characteristics: branchy integer and strided FP).
func diffWorkloads(t *testing.T) []*workload.Workload {
	t.Helper()
	out := []*workload.Workload{workload.MustGet("gcc")}
	for _, p := range []synth.Profile{
		{ILP: 1, BranchEntropy: 0.9, MemFootprintKB: 16, Seed: 7},
		{ILP: 5, StrideFrac: 0.9, FPMix: 0.7, MemFootprintKB: 64, Seed: 11},
	} {
		w, err := synth.Build(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := workload.Register(w); err != nil {
			t.Fatal(err)
		}
		out = append(out, w)
	}
	return out
}

// liveTrace collects the live post-warm-up stream of a workload.
func liveTrace(t *testing.T, w *workload.Workload, limit uint64) []emu.Trace {
	t.Helper()
	m, err := w.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	abs := uint64(0)
	if limit > 0 {
		abs = m.Retired + limit
	}
	s := emu.NewStream(m, abs)
	var out []emu.Trace
	buf := make([]emu.Trace, 37)
	for {
		n := s.Fill(buf)
		if n == 0 {
			break
		}
		out = append(out, buf[:n]...)
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestReplayByteIdenticalToLiveStream records each workload once and
// replays it, requiring the replayed records to equal the live stream
// exactly — same records, same order, same end.
func TestReplayByteIdenticalToLiveStream(t *testing.T) {
	const budget = 4000
	for _, w := range diffWorkloads(t) {
		live := liveTrace(t, w, budget)

		cache := trace.NewCache(trace.Policy{})
		m, err := w.NewMachine()
		if err != nil {
			t.Fatal(err)
		}
		g := cache.Acquire(w.Name, m.Retired, budget, nil)
		if g.Record == nil {
			t.Fatalf("%s: first acquisition must record", w.Name)
		}
		rec := trace.NewRecorder(g.Record, emu.NewStream(m, m.Retired+budget))
		var recorded []emu.Trace
		buf := make([]emu.Trace, 41)
		for {
			n := rec.Fill(buf)
			if n == 0 {
				break
			}
			recorded = append(recorded, buf[:n]...)
		}
		cache.FinishRecorder(rec, nil)
		if !reflect.DeepEqual(recorded, live) {
			t.Fatalf("%s: recorder pass-through altered the live stream", w.Name)
		}

		g2 := cache.Acquire(w.Name, g.Record.StartSeq(), budget, nil)
		if g2.Replay == nil {
			t.Fatalf("%s: second acquisition must replay", w.Name)
		}
		var replayed []emu.Trace
		for {
			n := g2.Replay.Fill(buf)
			if n == 0 {
				break
			}
			replayed = append(replayed, buf[:n]...)
		}
		if err := g2.Replay.Err(); err != nil {
			t.Fatal(err)
		}
		if len(replayed) != len(live) {
			t.Fatalf("%s: replay produced %d records, live %d", w.Name, len(replayed), len(live))
		}
		for i := range replayed {
			if replayed[i] != live[i] {
				t.Fatalf("%s: record %d differs:\n live   %+v\n replay %+v", w.Name, i, live[i], replayed[i])
			}
		}
	}
}

// TestReplayReproducesEarlyHalt replays a run-to-completion recording and
// checks both sides end at the same halt.
func TestReplayReproducesEarlyHalt(t *testing.T) {
	w, err := synth.Build(synth.Profile{ILP: 2, MemFootprintKB: 8, Seed: 3, Passes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.Register(w); err != nil {
		t.Fatal(err)
	}
	live := liveTrace(t, w, 0) // to halt
	if len(live) == 0 {
		t.Skip("workload does not halt under test budget")
	}
	cache := trace.NewCache(trace.Policy{})
	m, _ := w.NewMachine()
	g := cache.Acquire(w.Name, m.Retired, 0, nil)
	rec := trace.NewRecorder(g.Record, emu.NewStream(m, 0))
	buf := make([]emu.Trace, 64)
	for rec.Fill(buf) > 0 {
	}
	cache.FinishRecorder(rec, nil)
	if done, halted := g.Record.Complete(); !done || !halted {
		t.Fatalf("recording done=%v halted=%v, want complete halt", done, halted)
	}
	g2 := cache.Acquire(w.Name, g.Record.StartSeq(), 0, nil)
	if g2.Replay == nil {
		t.Fatal("halted recording must serve run-to-completion replays")
	}
	n := 0
	for {
		k := g2.Replay.Fill(buf)
		if k == 0 {
			break
		}
		n += k
	}
	if n != len(live) {
		t.Fatalf("replay delivered %d records to halt, live %d", n, len(live))
	}
}

// TestRunByteIdenticalWithTraceCacheOnAndOff runs every architecture over
// the differential workloads twice — trace cache enabled and disabled —
// and requires byte-identical results (including full per-core stats).
func TestRunByteIdenticalWithTraceCacheOnAndOff(t *testing.T) {
	workloads := diffWorkloads(t)
	prevPolicy := TraceCachePolicy()
	defer func() {
		SetTraceCachePolicy(prevPolicy)
		ResetTraceCache()
	}()

	type key struct {
		wl   string
		arch Arch
	}
	run := func(disabled bool) map[key]Result {
		SetTraceCachePolicy(trace.Policy{Disabled: disabled})
		ResetTraceCache()
		out := map[key]Result{}
		for _, w := range workloads {
			for _, arch := range []Arch{ArchBaseline, ArchFlywheel, ArchRegAlloc} {
				// Two budgets so prefix replay is exercised with the cache on.
				for _, budget := range []uint64{3000, 1200} {
					res, err := Run(RunConfig{
						Workload: w.Name, Arch: arch, Node: cacti.Node130,
						FEBoostPct: 50, BEBoostPct: 50, MaxInstructions: budget,
					})
					if err != nil {
						t.Fatalf("%s/%s: %v", w.Name, arch, err)
					}
					if budget == 3000 {
						out[key{w.Name, arch}] = res
					}
				}
			}
		}
		return out
	}

	on := run(false)
	stats := TraceCacheStats()
	if stats.Hits == 0 || stats.Misses == 0 {
		t.Fatalf("cache-on pass exercised no record/replay traffic: %+v", stats)
	}
	off := run(true)
	offStats := TraceCacheStats()
	if offStats.Bypasses == 0 || offStats.Misses != 0 {
		t.Fatalf("cache-off pass must bypass everything: %+v", offStats)
	}
	for k, a := range on {
		b := off[k]
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s/%s: results differ between trace cache on and off", k.wl, k.arch)
		}
	}
}
