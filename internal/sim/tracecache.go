package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"sync"

	"flywheel/internal/emu"
	"flywheel/internal/pipe"
	"flywheel/internal/trace"
	"flywheel/internal/workload"
)

// The process-wide trace cache (package trace) sits between the warm
// snapshots and the timing cores: the first run of a workload records the
// post-warm-up dynamic instruction stream while its own timing core
// consumes it, and every later run — any architecture, boost or node, and
// any instruction budget up to the recorded ceiling — replays the recording
// instead of re-executing the functional emulator. Runs are identical
// either way (pinned by differential tests); the cache only changes where
// the records come from.

var traceCache = trace.NewCache(trace.Policy{})

// SetTraceCachePolicy replaces the process-wide trace-cache policy. It
// applies to runs started after the call; the policy is global because the
// cache is (concurrent sweeps share recordings — that is the point).
func SetTraceCachePolicy(p trace.Policy) { traceCache.SetPolicy(p) }

// TraceCachePolicy returns the current policy.
func TraceCachePolicy() trace.Policy { return traceCache.Policy() }

// SetTraceSpillDir attaches (or, with "", detaches) a directory into which
// completed recordings are spilled and from which misses are revived, so a
// second process over a warm directory records nothing.
func SetTraceSpillDir(dir string) { traceCache.SetSpillDir(dir) }

// TraceCacheStats reports the trace cache's traffic counters.
func TraceCacheStats() trace.Stats { return traceCache.Stats() }

// ResetTraceCache drops every recording and zeroes the counters (tests and
// cold-start benchmarks). In-flight readers finish unaffected.
func ResetTraceCache() { traceCache.Reset() }

// traceKeys memoizes the cache key per workload. The key binds the
// workload's name to a digest of its source text, so a spill directory
// shared across processes can never alias two workloads that happen to
// reuse a name (synthetic profiles are registered at runtime; nothing
// guarantees cross-process name stability).
var traceKeys sync.Map // *workload.Workload -> string

func traceKey(w *workload.Workload) string {
	if k, ok := traceKeys.Load(w); ok {
		return k.(string)
	}
	sum := sha256.Sum256([]byte(w.Source))
	key := w.Name + "\x00" + hex.EncodeToString(sum[:])
	traceKeys.Store(w, key)
	return key
}

// acquireSource picks the instruction source for one run: a replaying
// reader on a hit, a recording pass-through on a miss, or a plain live
// stream on a bypass. finish must be called exactly once when the run ends
// (nil error on success); it completes or aborts a recording and is a no-op
// for the other grants.
func acquireSource(w *workload.Workload, ws *warmSnapshot, maxInstructions uint64) (src pipe.InstSource, finish func(error), err error) {
	noop := func(error) {}
	liveStream := func(skip uint64) (*emu.Stream, error) {
		m := ws.machine()
		if skip > 0 {
			if _, err := m.Run(skip); err != nil {
				return nil, err
			}
		}
		limit := uint64(0)
		if maxInstructions > 0 {
			limit = ws.snap.Retired() + maxInstructions
		}
		return emu.NewStream(m, limit), nil
	}

	g := traceCache.Acquire(traceKey(w), ws.snap.Retired(), maxInstructions, liveStream)
	switch {
	case g.Replay != nil:
		return g.Replay, noop, nil
	case g.Record != nil:
		live, err := liveStream(0)
		if err != nil {
			// The machine could not even be cloned; drop the recording so
			// waiters fall back rather than hang.
			g.Record.Fail()
			return nil, nil, err
		}
		rec := trace.NewRecorder(g.Record, live)
		return rec, func(runErr error) { traceCache.FinishRecorder(rec, runErr) }, nil
	default:
		live, err := liveStream(0)
		if err != nil {
			return nil, nil, err
		}
		return live, noop, nil
	}
}
