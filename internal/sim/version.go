package sim

// ModelVersion identifies the semantics of Result: the timing model, the
// energy model, and the meaning of every counter. Persisted results (the
// lab's on-disk store) are stamped with it, so bumping this constant
// invalidates every stored entry at once. Bump it whenever a change makes
// previously computed results non-comparable — a new energy coefficient, a
// fixed counter, a pipeline behavior change — even if the Result struct
// itself is unchanged.
//
// Version 3 corresponds to PR 3's energy accounting (replay-issued
// instructions no longer double-count register reads). Version 4
// corresponds to the pluggable frontend: lab.Job cache keys grew
// predictor/prefetcher segments and Result grew frontend observables, so
// entries stored under version 3 keys must never satisfy version 4
// lookups.
const ModelVersion = 4
