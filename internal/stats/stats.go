// Package stats provides the counters and table rendering shared by the
// simulators and the experiment harness.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Ratio returns a/b, or NaN when b is zero. A zero denominator means the
// baseline measurement is degenerate, and no finite convention is safe: the
// old "return 0" made a broken baseline produce an EnergyRatio of 0, which
// Pareto-dominated every real point and silently corrupted the frontier.
// NaN instead poisons every comparison, and consumers (explore.markFrontier)
// exclude NaN points from dominance explicitly.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return math.NaN()
	}
	return a / b
}

// Pct formats a fraction as a percentage string with one decimal.
func Pct(frac float64) string { return fmt.Sprintf("%.1f%%", frac*100) }

// F formats a float with the given precision, trimming to plain notation.
func F(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

// Table is a simple text/markdown table builder used by the experiment
// harness to print paper-style rows.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends one row; missing cells render empty.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddF appends a row of a label followed by formatted floats.
func (t *Table) AddF(label string, prec int, vals ...float64) {
	row := []string{label}
	for _, v := range vals {
		row = append(row, F(v, prec))
	}
	t.Add(row...)
}

func (t *Table) widths() []int {
	w := make([]int, len(t.Header))
	for i, h := range t.Header {
		w[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i >= len(w) {
				w = append(w, 0)
			}
			if len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// String renders an aligned plain-text table.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	w := t.widths()
	line := func(cells []string) {
		for i := 0; i < len(w); i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(w))
	for i := range sep {
		sep[i] = strings.Repeat("-", w[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	row := func(cells []string) {
		b.WriteString("|")
		for i := 0; i < len(t.Header); i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, " %s |", c)
		}
		b.WriteString("\n")
	}
	row(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	row(sep)
	for _, r := range t.Rows {
		row(r)
	}
	return b.String()
}

// GeoMean returns the geometric mean of vs (the conventional way to average
// normalized performance numbers); it returns 0 for empty input or any
// non-positive element.
func GeoMean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		if v <= 0 {
			return 0
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vs)))
}

// Mean returns the arithmetic mean, or 0 for empty input.
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}
