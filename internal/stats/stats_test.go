package stats

import (
	"math"
	"strings"
	"testing"
)

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Error("ratio wrong")
	}
	// A zero denominator must not produce a finite value: the old
	// "Ratio(x, 0) == 0" convention made a degenerate baseline dominate
	// every real point in Pareto comparisons.
	if got := Ratio(1, 0); !math.IsNaN(got) {
		t.Errorf("Ratio(1, 0) = %v, want NaN", got)
	}
	if got := Ratio(0, 0); !math.IsNaN(got) {
		t.Errorf("Ratio(0, 0) = %v, want NaN", got)
	}
}

func TestPctAndF(t *testing.T) {
	if got := Pct(0.876); got != "87.6%" {
		t.Errorf("Pct = %q", got)
	}
	if got := F(1.23456, 2); got != "1.23" {
		t.Errorf("F = %q", got)
	}
}

func TestTableString(t *testing.T) {
	tbl := NewTable("Demo", "bench", "value")
	tbl.Add("gcc", "1.54")
	tbl.AddF("vpr", 2, 0.915)
	s := tbl.String()
	if !strings.Contains(s, "Demo") || !strings.Contains(s, "gcc") || !strings.Contains(s, "0.92") {
		t.Errorf("table output missing content:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Errorf("line count = %d, want 5:\n%s", len(lines), s)
	}
}

func TestTableMarkdown(t *testing.T) {
	tbl := NewTable("T", "a", "b")
	tbl.Add("x", "y")
	md := tbl.Markdown()
	if !strings.Contains(md, "| a | b |") || !strings.Contains(md, "| --- | --- |") || !strings.Contains(md, "| x | y |") {
		t.Errorf("markdown = %q", md)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tbl := NewTable("", "a", "b", "c")
	tbl.Add("only")
	if s := tbl.String(); !strings.Contains(s, "only") {
		t.Errorf("ragged row lost: %q", s)
	}
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{1, 4})
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("geomean = %v, want 2", got)
	}
	if GeoMean(nil) != 0 {
		t.Error("empty geomean != 0")
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Error("negative input not rejected")
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("mean = %v", got)
	}
	if Mean(nil) != 0 {
		t.Error("empty mean != 0")
	}
}
