package trace

import (
	"fmt"
	"sync"

	"flywheel/internal/emu"
)

// Policy tunes the process-wide trace cache.
type Policy struct {
	// Disabled turns the cache off: every acquisition is a bypass and runs
	// on live functional emulation, the pre-cache behavior.
	Disabled bool
	// MaxBytes caps the resident encoded size of all recordings. Zero or
	// negative means the DefaultMaxBytes cap. When a new recording would
	// exceed the cap, completed recordings are evicted least-recently-used
	// first; if the cap still cannot be met, the recording is dropped and
	// its key is served by live emulation from then on (graceful fallback,
	// never an error).
	MaxBytes int64
}

// DefaultMaxBytes is the default resident cap (256 MiB — roughly 25M
// recorded instructions, far beyond a paper-scale sweep's needs).
const DefaultMaxBytes int64 = 256 << 20

func (p Policy) maxBytes() int64 {
	if p.MaxBytes <= 0 {
		return DefaultMaxBytes
	}
	return p.MaxBytes
}

// Stats counts cache traffic.
type Stats struct {
	// Hits are replays served from a recording (including replays that ran
	// concurrently with the recording). Misses are recordings started — the
	// runs that executed the functional emulator and taped it. Bypasses ran
	// live without recording (cache disabled, budget not covered by the
	// in-flight recording, or a key blacklisted by the memory cap).
	Hits, Misses, Bypasses uint64
	// SpillLoads counts recordings revived from the spill directory;
	// SpillSaves counts recordings written to it.
	SpillLoads, SpillSaves uint64
	// Evictions counts recordings dropped by the memory cap.
	Evictions uint64
	// ResidentBytes is the current encoded footprint; Entries the number of
	// resident recordings.
	ResidentBytes int64
	Entries       int
}

// String renders the counters as one fixed-shape log line (the CLIs'
// -storestats flags print it; CI greps it).
func (s Stats) String() string {
	return fmt.Sprintf("trace cache: %d replays, %d recordings, %d bypasses, %d evictions, %d spill loads, %d spill saves; %d recordings resident, %d bytes",
		s.Hits, s.Misses, s.Bypasses, s.Evictions, s.SpillLoads, s.SpillSaves, s.Entries, s.ResidentBytes)
}

// Cache is the per-process recording cache, keyed by workload identity.
// The zero value is not usable; use NewCache.
type Cache struct {
	mu      sync.Mutex
	policy  Policy
	entries map[string]*cacheEntry
	bytes   int64
	clock   uint64          // LRU tick
	nocache map[string]bool // keys vetoed by the memory cap
	stats   Stats
	spill   *spillDir
}

type cacheEntry struct {
	rec  *Recording
	used uint64 // LRU stamp
}

// NewCache returns an empty cache under the given policy.
func NewCache(p Policy) *Cache {
	return &Cache{policy: p, entries: map[string]*cacheEntry{}, nocache: map[string]bool{}}
}

// SetPolicy replaces the policy. Lowering the cap evicts immediately;
// any change clears the cap blacklist, so keys vetoed under an old cap get
// another chance instead of bypassing for the process lifetime.
func (c *Cache) SetPolicy(p Policy) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p != c.policy {
		c.nocache = map[string]bool{}
	}
	c.policy = p
	c.evictToLocked(p.maxBytes())
}

// Policy returns the current policy.
func (c *Cache) Policy() Policy {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.policy
}

// SetSpillDir attaches a persistence directory: completed recordings are
// written there, and misses consult it before recording, so a second
// process over a warm directory records nothing. An empty dir detaches.
func (c *Cache) SetSpillDir(dir string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if dir == "" {
		c.spill = nil
		return
	}
	c.spill = &spillDir{dir: dir}
}

// Stats returns a snapshot of the traffic counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.ResidentBytes = c.bytes
	s.Entries = len(c.entries)
	return s
}

// Reset drops every recording and zeroes the counters (tests, benchmarks).
// In-flight readers keep their references and finish unaffected.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[string]*cacheEntry{}
	c.nocache = map[string]bool{}
	c.bytes = 0
	c.clock = 0
	c.stats = Stats{}
}

// Grant is the outcome of an acquisition. Exactly one field is set for a
// cache-mediated run; both nil means bypass (run live, unrecorded).
type Grant struct {
	// Record is a fresh in-progress recording; the caller wraps its live
	// stream in NewRecorder(Record, stream) and must call Finish or Abort
	// on the recorder when the run ends.
	Record *Recording
	// Replay is a positioned reader serving the whole run.
	Replay *Reader
}

// Acquire decides how a run of the keyed workload with the given budget
// (0 = run to completion) gets its instruction stream. startSeq is the
// dynamic sequence number at the warm point; it guards spill revivals.
// The fallback factory (see NewReader) is captured into replay grants.
func (c *Cache) Acquire(key string, startSeq, budget uint64, fallback func(skip uint64) (*emu.Stream, error)) Grant {
	c.mu.Lock()
	if c.policy.Disabled || c.nocache[key] {
		c.stats.Bypasses++
		c.mu.Unlock()
		return Grant{}
	}
	c.clock++
	triedSpill := false
	for {
		if e, ok := c.entries[key]; ok {
			if e.rec.usableFor(budget) {
				e.used = c.clock
				c.stats.Hits++
				c.mu.Unlock()
				return Grant{Replay: NewReader(e.rec, budget, fallback)}
			}
			if done, failed := recStatus(e.rec); !done && !failed {
				// A recording is in flight but its ceiling does not cover
				// this budget; recording a second tape of the same workload
				// concurrently would double the memory for no reuse.
				c.stats.Bypasses++
				c.mu.Unlock()
				return Grant{}
			}
			// Completed-but-insufficient (or failed): replace with a
			// recording at the larger budget. Readers of the old tape are
			// unaffected.
			c.dropLocked(key)
		}
		if c.spill != nil && !triedSpill {
			// Disk I/O and chunk decode happen outside the lock so other
			// acquirers (pure memory hits included) never stall behind a
			// file read; the loop re-evaluates after relocking, since a
			// concurrent acquirer may have installed an entry meanwhile.
			triedSpill = true
			spill := c.spill
			c.mu.Unlock()
			rec := spill.load(key, startSeq, budget)
			c.mu.Lock()
			if rec != nil {
				if _, ok := c.entries[key]; !ok {
					c.stats.SpillLoads++
					c.insertLocked(key, rec)
				}
			}
			continue
		}
		break
	}
	rec := newRecording(key, startSeq, budget)
	rec.onPublish = func(delta int64) bool { return c.addBytes(key, delta) }
	c.insertLocked(key, rec)
	c.stats.Misses++
	c.mu.Unlock()
	return Grant{Record: rec}
}

// FinishRecorder completes a recording run: Finish on success, Abort on
// error, and spills completed recordings when a spill directory is set.
func (c *Cache) FinishRecorder(t *Recorder, runErr error) {
	if runErr != nil {
		t.Abort()
		return
	}
	t.Finish()
	c.mu.Lock()
	spill := c.spill
	c.mu.Unlock()
	if spill == nil {
		return
	}
	t.rec.mu.Lock()
	clean := t.rec.st == stateDone && t.rec.err == nil
	t.rec.mu.Unlock()
	if clean {
		if spill.save(t.rec) == nil {
			c.mu.Lock()
			c.stats.SpillSaves++
			c.mu.Unlock()
		}
	}
}

// recStatus reads a recording's lifecycle state. Lock order is always
// cache.mu → Recording.mu, never the reverse (the publish hook runs before
// the recording takes its own lock), so calling this under c.mu is safe.
func recStatus(r *Recording) (done, failed bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.st == stateDone, r.st == stateFailed
}

// insertLocked adds a recording under key, accounting its current bytes.
func (c *Cache) insertLocked(key string, rec *Recording) {
	c.entries[key] = &cacheEntry{rec: rec, used: c.clock}
	c.bytes += rec.Bytes()
	c.evictToLocked(c.policy.maxBytes())
}

// dropLocked removes a key, returning its bytes to the budget.
func (c *Cache) dropLocked(key string) {
	if e, ok := c.entries[key]; ok {
		c.bytes -= e.rec.Bytes()
		delete(c.entries, key)
	}
}

// addBytes is the recorder's publish hook: account the delta, evicting
// completed recordings to stay under the cap. It returns false — veto —
// when the cap cannot be met even after eviction; the caller then aborts
// the recording and the key is blacklisted so later runs bypass straight
// to live emulation instead of re-recording and re-aborting.
func (c *Cache) addBytes(key string, delta int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	max := c.policy.maxBytes()
	c.bytes += delta
	if c.bytes <= max {
		return true
	}
	c.evictToLocked(max, key)
	if c.bytes <= max {
		return true
	}
	// Still over: this recording alone exceeds the cap. Undo the delta
	// (the vetoed chunk is never published), drop the entry's published
	// prefix, and blacklist the key.
	c.bytes -= delta
	c.dropLocked(key)
	c.nocache[key] = true
	return false
}

// evictToLocked drops completed recordings, least recently used first,
// until resident bytes fit in max. Keys in keep are never dropped.
func (c *Cache) evictToLocked(max int64, keep ...string) {
	for c.bytes > max {
		var victim string
		var oldest uint64
		found := false
		for k, e := range c.entries {
			if done, failed := recStatus(e.rec); !done && !failed {
				continue // never evict an in-flight recording
			}
			kept := false
			for _, kk := range keep {
				if k == kk {
					kept = true
					break
				}
			}
			if kept {
				continue
			}
			if !found || e.used < oldest {
				victim, oldest, found = k, e.used, true
			}
		}
		if !found {
			return
		}
		c.dropLocked(victim)
		c.stats.Evictions++
	}
}
