package trace

import (
	"encoding/binary"
	"fmt"

	"flywheel/internal/emu"
	"flywheel/internal/isa"
)

// The columnar chunk encoding. A dynamic instruction stream is highly
// redundant: the PC of every record equals the NextPC of the record before
// it, the next PC of almost every instruction is statically determined by
// the instruction itself, and sequence numbers are consecutive. A chunk
// therefore stores only the irreducible dynamic information, one column per
// kind so each compresses on its own terms:
//
//   - insts:   the executed instruction per record (packed op/regs/imm,
//     8 bytes) — the only per-record column with fixed width.
//   - taken:   one bit per record, the branch outcome stream.
//   - addrs:   zigzag-varint deltas of effective addresses, present only
//     for loads and stores (strided kernels collapse to ~1 byte/access).
//   - targets: indirect jump targets (JALR is the only instruction whose
//     next PC is not derivable), 8 bytes each, rare.
//
// Everything else — Seq, PC, NextPC, the Taken flag of unconditional
// jumps — is reconstructed during decode by replaying the PC chain from the
// chunk's base. Decode is exact: a decoded record is byte-identical to the
// emu.Trace record that was encoded (pinned by the differential tests).
//
// Chunks are immutable once published, so a recording can stream: the
// recorder fills a private open chunk while earlier chunks are already
// being replayed by concurrent readers.

// chunkRecords is the record capacity of one chunk. Small enough that an
// in-progress recording publishes at a useful granularity for concurrent
// readers, large enough that per-chunk overheads vanish.
const chunkRecords = 1024

// chunk is one immutable run of consecutive records in columnar form.
type chunk struct {
	baseSeq uint64 // Seq of record 0
	basePC  uint64 // PC of record 0
	n       int    // records encoded

	insts   []isa.Instruction
	taken   []byte   // bitset, bit i = record i's Taken flag
	addrs   []byte   // zigzag varint address deltas, loads/stores only
	targets []uint64 // JALR next PCs, in record order
}

// sizeBytes is the chunk's resident footprint (column payloads only; the
// fixed header is noise).
func (c *chunk) sizeBytes() int64 {
	return int64(len(c.insts))*8 + int64(len(c.taken)) + int64(len(c.addrs)) + int64(len(c.targets))*8
}

// encoder builds chunks from a sequential record stream.
type encoder struct {
	open     *chunk
	nextSeq  uint64
	nextPC   uint64
	prevAddr uint64 // address delta chain, reset per chunk
	started  bool
	scratch  [binary.MaxVarintLen64]byte
}

// appendRecord encodes one record into the open chunk, opening one as
// needed, and returns the chunk if this record filled it (the caller
// publishes full chunks). It fails when the stream violates the sequential
// contract (Seq or PC chain breaks), which would make reconstruction wrong.
func (e *encoder) appendRecord(tr emu.Trace) (full *chunk, err error) {
	if e.started {
		if tr.Seq != e.nextSeq {
			return nil, fmt.Errorf("trace: sequence break: got seq %d, want %d", tr.Seq, e.nextSeq)
		}
		if tr.PC != e.nextPC {
			return nil, fmt.Errorf("trace: control-flow break: record %d at pc %#x, previous NextPC %#x", tr.Seq, tr.PC, e.nextPC)
		}
	}
	if e.open == nil {
		e.open = &chunk{
			baseSeq: tr.Seq,
			basePC:  tr.PC,
			insts:   make([]isa.Instruction, 0, chunkRecords),
			taken:   make([]byte, 0, chunkRecords/8),
		}
		e.prevAddr = 0
	}
	c := e.open
	i := c.n
	c.insts = append(c.insts, tr.Inst)
	if i%8 == 0 {
		c.taken = append(c.taken, 0)
	}
	if tr.Taken {
		c.taken[i/8] |= 1 << (i % 8)
	}
	switch tr.Inst.Class() {
	case isa.ClassLoad, isa.ClassStore:
		d := int64(tr.Addr - e.prevAddr)
		n := binary.PutUvarint(e.scratch[:], zigzag(d))
		c.addrs = append(c.addrs, e.scratch[:n]...)
		e.prevAddr = tr.Addr
	}
	if tr.Inst.Op == isa.JALR {
		c.targets = append(c.targets, tr.NextPC)
	}
	c.n++
	e.started = true
	e.nextSeq = tr.Seq + 1
	e.nextPC = tr.NextPC
	if c.n >= chunkRecords {
		e.open = nil
		return c, nil
	}
	return nil, nil
}

// take closes and returns the open partial chunk, if any (end of stream).
func (e *encoder) take() *chunk {
	c := e.open
	e.open = nil
	return c
}

// decoder replays one chunk sequentially.
type decoder struct {
	c       *chunk
	i       int    // next record index
	pc      uint64 // PC of record i
	addr    uint64 // address delta chain
	addrOff int    // read offset into c.addrs
	tgt     int    // read offset into c.targets
}

func newDecoder(c *chunk) decoder {
	return decoder{c: c, pc: c.basePC}
}

// next decodes the record at the cursor. Calling next past the end is a
// caller bug (the reader bounds its cursor by the published record count).
func (d *decoder) next() emu.Trace {
	c := d.c
	i := d.i
	in := c.insts[i]
	tr := emu.Trace{
		Seq:    c.baseSeq + uint64(i),
		PC:     d.pc,
		Inst:   in,
		NextPC: d.pc + isa.InstBytes,
		Taken:  c.taken[i/8]&(1<<(i%8)) != 0,
	}
	switch in.Class() {
	case isa.ClassLoad, isa.ClassStore:
		delta, n := binary.Uvarint(c.addrs[d.addrOff:])
		d.addrOff += n
		d.addr += uint64(unzigzag(delta))
		tr.Addr = d.addr
	case isa.ClassBranch:
		if tr.Taken {
			tr.NextPC = d.pc + uint64(int64(in.Imm))*isa.InstBytes
		}
	case isa.ClassJump:
		if in.Op == isa.JALR {
			tr.NextPC = c.targets[d.tgt]
			d.tgt++
		} else {
			tr.NextPC = d.pc + uint64(int64(in.Imm))*isa.InstBytes
		}
	case isa.ClassHalt:
		tr.NextPC = d.pc
	}
	d.i++
	d.pc = tr.NextPC
	return tr
}

// zigzag maps signed deltas onto unsigned varint-friendly space.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
