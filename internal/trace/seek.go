package trace

import "sort"

// Chunk-indexed seek. Every chunk is independently decodable: it carries
// its own base sequence number and base PC, and the address-delta chain is
// reset at each chunk boundary (the encoder's first load/store delta in a
// chunk is relative to zero). Positioning a cursor n records ahead
// therefore never replays the skipped region — the cursor jumps straight
// to the target's chunk and decodes only the in-chunk prefix (< one chunk)
// needed to rebuild the PC and address chains at the target. Sampled
// execution uses this to fast-forward between detailed windows without
// paying full decode for regions it will neither warm nor measure.

// Skip advances the replay cursor past up to n records without delivering
// them. It skips only through records already published (it never blocks on
// an in-progress recording) and never past the delivery limit or into an
// activated live fallback, and returns the number of records actually
// skipped — possibly less than n, in which case the caller consumes the
// rest through Next/Fill as usual. The records skipped are exactly the
// next records Fill would have delivered: a reader that skips k records and
// then replays is positioned identically to one that read and discarded k.
func (r *Reader) Skip(n uint64) uint64 {
	if n == 0 || r.live != nil || r.fallbackErr != nil {
		return 0
	}
	if r.limit > 0 {
		if r.count >= r.limit {
			return 0
		}
		if left := r.limit - r.count; left < n {
			n = left
		}
	}
	// Non-blocking snapshot of the published state (refresh would wait for
	// more chunks; a skip bounded by what exists must not).
	rec := r.rec
	rec.mu.Lock()
	r.chunks = rec.chunks
	r.avail = rec.total
	r.final = rec.st
	rec.mu.Unlock()
	if r.count >= r.avail {
		return 0
	}
	if left := r.avail - r.count; left < n {
		n = left
	}
	target := r.count + n // global record index to position the cursor at
	start := r.rec.startSeq

	// Records are consecutive across chunks, so chunk k covers global
	// indices [baseSeq-start, baseSeq-start+n). Find the chunk holding the
	// target index.
	ci := sort.Search(len(r.chunks), func(k int) bool {
		return r.chunks[k].baseSeq-start > target
	}) - 1
	c := r.chunks[ci]
	within := int(target - (c.baseSeq - start))
	r.ci = ci
	switch {
	case within == c.n:
		// Exactly the chunk's end: mark the decoder exhausted so the next
		// read advances to the following chunk (which may not be published
		// yet). The stale chain state is never read at i == n.
		r.dec = decoder{c: c, i: c.n}
	case r.dec.c == c && r.dec.i <= within:
		// Same chunk, ahead of the cursor: replay only the gap.
		for r.dec.i < within {
			r.dec.next()
		}
	default:
		r.dec = newDecoder(c)
		for r.dec.i < within {
			r.dec.next()
		}
	}
	r.count = target
	return n
}
