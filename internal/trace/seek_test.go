package trace

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"flywheel/internal/asm"
	"flywheel/internal/emu"
)

// seekProgram is testProgram with enough loop iterations to span several
// chunks (~5400 records against chunkRecords=1024), so seeks cross chunk
// boundaries and land at every in-chunk phase.
const seekProgram = `
        .data
buf:    .space 256
        .text
        la   r2, buf
        li   r1, 600
        li   r10, 0
loop:   ld   r3, 0(r2)
        addi r3, r3, 3
        sd   r3, 8(r2)
        lw   r4, 16(r2)
        sb   r4, 1(r2)
        jal  r31, sub
        addi r1, r1, -1
        bne  r1, r0, loop
        j    out
sub:    add  r10, r10, r3
        jalr r0, r31
out:    halt
`

func seekRecording(t *testing.T) (*Recording, []emu.Trace) {
	t.Helper()
	prog, err := asm.Assemble("seek-test.s", seekProgram)
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(prog)
	rec := newRecording("k", 0, 0)
	tr := NewRecorder(rec, emu.NewStream(m, 0))
	var seen []emu.Trace
	buf := make([]emu.Trace, 64)
	for {
		n := tr.Fill(buf)
		if n == 0 {
			break
		}
		seen = append(seen, buf[:n]...)
	}
	tr.Finish()
	return rec, seen
}

// TestSkipMatchesDiscard is the seek determinism property: a reader that
// skips k records and replays the rest must deliver exactly what a reader
// that read and discarded k records would — for k at chunk boundaries,
// either side of them, and at random positions.
func TestSkipMatchesDiscard(t *testing.T) {
	rec, full := seekRecording(t)
	total := uint64(len(full))
	if total <= chunkRecords {
		t.Fatalf("seek program produced %d records, need > %d for chunk crossings", total, chunkRecords)
	}

	ks := []uint64{0, 1, 2, chunkRecords - 1, chunkRecords, chunkRecords + 1,
		2*chunkRecords - 1, 2 * chunkRecords, 2*chunkRecords + 1,
		total - 1, total, total + 10}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 24; i++ {
		ks = append(ks, uint64(rng.Intn(int(total)+5)))
	}

	for _, k := range ks {
		r := NewReader(rec, 0, nil)
		skipped := r.Skip(k)
		want := k
		if want > total {
			want = total
		}
		if skipped != want {
			t.Fatalf("Skip(%d) = %d, want %d", k, skipped, want)
		}
		got := drainReader(t, r)
		if len(got) != len(full[want:]) || (len(got) > 0 && !reflect.DeepEqual(got, full[want:])) {
			t.Fatalf("k=%d: replay after seek diverged from discard replay (got %d records, want %d)", k, len(got), len(full[want:]))
		}
	}
}

// TestSkipInterleavedWithReads walks a reader through random alternations
// of Skip and Fill and checks every delivered record against the reference
// stream; this exercises the same-chunk fast path (cursor already inside
// the target chunk) as well as cross-chunk repositioning from mid-chunk
// decoder states.
func TestSkipInterleavedWithReads(t *testing.T) {
	rec, full := seekRecording(t)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		r := NewReader(rec, 0, nil)
		pos := uint64(0)
		buf := make([]emu.Trace, 97)
		for pos < uint64(len(full)) {
			if rng.Intn(2) == 0 {
				k := uint64(rng.Intn(700))
				skipped := r.Skip(k)
				want := k
				if left := uint64(len(full)) - pos; left < want {
					want = left
				}
				if skipped != want {
					t.Fatalf("trial %d pos %d: Skip(%d) = %d, want %d", trial, pos, k, skipped, want)
				}
				pos += skipped
			} else {
				n := r.Fill(buf[:1+rng.Intn(len(buf))])
				if n == 0 {
					break
				}
				for i := 0; i < n; i++ {
					if buf[i] != full[pos+uint64(i)] {
						t.Fatalf("trial %d: record %d differs after interleaved seek", trial, pos+uint64(i))
					}
				}
				pos += uint64(n)
			}
		}
		if pos != uint64(len(full)) {
			t.Fatalf("trial %d: reader ended at %d of %d", trial, pos, len(full))
		}
	}
}

// TestSkipRespectsLimit: a budget-limited reader must not seek past its
// delivery limit, and the post-seek replay must still be the exact prefix
// remainder.
func TestSkipRespectsLimit(t *testing.T) {
	rec, full := seekRecording(t)
	const limit = 1500
	r := NewReader(rec, limit, nil)
	if got := r.Skip(1200); got != 1200 {
		t.Fatalf("Skip(1200) = %d", got)
	}
	if got := r.Skip(1000); got != limit-1200 {
		t.Fatalf("Skip past limit returned %d, want %d", got, limit-1200)
	}
	if got := r.Skip(1); got != 0 {
		t.Fatalf("Skip at limit returned %d, want 0", got)
	}
	if got := drainReader(t, r); len(got) != 0 {
		t.Fatalf("reader delivered %d records past its limit", len(got))
	}
	r2 := NewReader(rec, limit, nil)
	if got := r2.Skip(700); got != 700 {
		t.Fatalf("Skip(700) = %d", got)
	}
	if got := drainReader(t, r2); !reflect.DeepEqual(got, full[700:limit]) {
		t.Fatalf("limited replay after seek diverged (%d records, want %d)", len(got), limit-700)
	}
}

// TestSkipMidRecording: while the recorder is still running, Skip must cap
// at the published (sealed-chunk) record count without blocking, and the
// reader must then stream the remainder identically once the recording
// completes.
func TestSkipMidRecording(t *testing.T) {
	prog, err := asm.Assemble("seek-test.s", seekProgram)
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(prog)
	rec := newRecording("k", 0, 0)
	trc := NewRecorder(rec, emu.NewStream(m, 0))

	// Feed 1.5 chunks of records: exactly one chunk is sealed/published,
	// the rest sit in the recorder's open chunk.
	var fed []emu.Trace
	buf := make([]emu.Trace, 64)
	for uint64(len(fed)) < chunkRecords+chunkRecords/2 {
		n := trc.Fill(buf)
		if n == 0 {
			t.Fatal("recording ended before reaching a chunk boundary")
		}
		fed = append(fed, buf[:n]...)
	}

	r := NewReader(rec, 0, nil)
	if got := r.Skip(3 * chunkRecords); got != chunkRecords {
		t.Fatalf("mid-recording Skip = %d, want published count %d", got, chunkRecords)
	}
	// A second skip with nothing newly published must be a no-op, not a stall.
	if got := r.Skip(10); got != 0 {
		t.Fatalf("second mid-recording Skip = %d, want 0", got)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	var got []emu.Trace
	go func() {
		defer wg.Done()
		got = drainReader(t, r)
	}()
	for {
		n := trc.Fill(buf)
		if n == 0 {
			break
		}
		fed = append(fed, buf[:n]...)
	}
	trc.Finish()
	wg.Wait()
	if !reflect.DeepEqual(got, fed[chunkRecords:]) {
		t.Fatalf("post-recording drain diverged (got %d records, want %d)", len(got), len(fed)-int(chunkRecords))
	}
}

func drainReader(t *testing.T, r *Reader) []emu.Trace {
	t.Helper()
	var out []emu.Trace
	buf := make([]emu.Trace, 53)
	for {
		n := r.Fill(buf)
		if n == 0 {
			break
		}
		out = append(out, buf[:n]...)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}
