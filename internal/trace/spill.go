package trace

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"flywheel/internal/isa"
)

// Recording spill: completed recordings are serialized into a directory so
// a second process over the same store records nothing — the functional
// execution of a workload happens once, ever. The format is a private,
// versioned binary dump of the chunk columns; anything unexpected (bad
// magic, version skew, truncation, wrong warm point) is treated as a miss,
// mirroring the corruption tolerance of internal/lab/store.

// spillMagic and spillVersion stamp the file format. Bump the version on
// any change to the chunk encoding (encode.go) — stale files then read as
// misses and are overwritten by fresh recordings.
const (
	spillMagic   = "FWTRACE\x00"
	spillVersion = uint32(1)
)

type spillDir struct{ dir string }

// path maps a cache key to its file. Keys embed workload source hashes
// (see sim's key construction) and are unbounded, so the filename is the
// key's digest.
func (s *spillDir) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:16])+".trace")
}

// save atomically writes a completed recording.
func (s *spillDir) save(r *Recording) error {
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return err
	}
	r.mu.Lock()
	chunks := r.chunks
	halted := r.halted
	r.mu.Unlock()

	tmp, err := os.CreateTemp(s.dir, ".trace-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	bw := bufio.NewWriterSize(tmp, 1<<16)

	// Everything after the fixed header runs through a CRC, appended as a
	// trailer: a structurally plausible but corrupted payload must read as
	// a miss, never as a wrong instruction stream.
	sum := crc32.NewIEEE()
	w := io.MultiWriter(bw, sum)
	put := func(v uint64) { _ = binary.Write(w, binary.LittleEndian, v) }
	_, _ = bw.WriteString(spillMagic)
	_ = binary.Write(bw, binary.LittleEndian, spillVersion)
	put(r.startSeq)
	put(r.ceiling)
	b := byte(0)
	if halted {
		b = 1
	}
	_, _ = w.Write([]byte{b})
	put(uint64(len(chunks)))
	var raw [8]byte
	for _, c := range chunks {
		put(c.baseSeq)
		put(c.basePC)
		put(uint64(c.n))
		put(uint64(len(c.insts)))
		for _, in := range c.insts {
			raw[0], raw[1], raw[2], raw[3] = byte(in.Op), byte(in.Rd), byte(in.Rs1), byte(in.Rs2)
			binary.LittleEndian.PutUint32(raw[4:], uint32(in.Imm))
			_, _ = w.Write(raw[:])
		}
		put(uint64(len(c.taken)))
		_, _ = w.Write(c.taken)
		put(uint64(len(c.addrs)))
		_, _ = w.Write(c.addrs)
		put(uint64(len(c.targets)))
		for _, t := range c.targets {
			put(t)
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, sum.Sum32()); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), s.path(r.key))
}

// load revives a recording if a compatible file exists and covers the
// budget. Any read problem is a plain miss.
func (s *spillDir) load(cacheKey string, startSeq, budget uint64) *Recording {
	f, err := os.Open(s.path(cacheKey))
	if err != nil {
		return nil
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)

	magic := make([]byte, len(spillMagic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != spillMagic {
		return nil
	}
	var ver uint32
	if err := binary.Read(r, binary.LittleEndian, &ver); err != nil || ver != spillVersion {
		return nil
	}
	// Everything after the version runs through the CRC that save appended
	// as a trailer; a mismatch reads as a miss.
	sum := crc32.NewIEEE()
	tr := io.TeeReader(r, sum)
	get := func() (uint64, error) {
		var v uint64
		err := binary.Read(tr, binary.LittleEndian, &v)
		return v, err
	}
	fileStart, err := get()
	if err != nil || fileStart != startSeq {
		return nil
	}
	ceiling, err := get()
	if err != nil {
		return nil
	}
	var hb [1]byte
	if _, err := io.ReadFull(tr, hb[:]); err != nil {
		return nil
	}
	halted := hb[0] == 1
	// Usability check before paying for the chunk payload.
	if !halted && ceiling != 0 && (budget == 0 || budget > ceiling) {
		return nil
	}
	nchunks, err := get()
	if err != nil || nchunks > 1<<24 {
		return nil
	}
	rec := newRecording(cacheKey, startSeq, ceiling)
	for ci := uint64(0); ci < nchunks; ci++ {
		c, err := readChunk(tr, get)
		if err != nil {
			return nil
		}
		rec.chunks = append(rec.chunks, c)
		rec.total += uint64(c.n)
		rec.bytes += c.sizeBytes()
	}
	var fileCRC uint32
	if err := binary.Read(r, binary.LittleEndian, &fileCRC); err != nil || fileCRC != sum.Sum32() {
		return nil
	}
	rec.st = stateDone
	rec.halted = halted
	return rec
}

// VerifySpillFile checks that the file at path is a structurally valid,
// CRC-clean trace spill of the current format version — the scrub hook
// for internal/lab/store. Any error means load would treat the file as a
// miss (bad magic, version skew, truncation, invalid encodings, CRC
// mismatch), so it is safe — and useful — to quarantine it.
func VerifySpillFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("trace spill: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)

	magic := make([]byte, len(spillMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return fmt.Errorf("trace spill: short header: %w", err)
	}
	if string(magic) != spillMagic {
		return fmt.Errorf("trace spill: bad magic")
	}
	var ver uint32
	if err := binary.Read(r, binary.LittleEndian, &ver); err != nil {
		return fmt.Errorf("trace spill: short header: %w", err)
	}
	if ver != spillVersion {
		return fmt.Errorf("trace spill: version %d, want %d", ver, spillVersion)
	}
	sum := crc32.NewIEEE()
	tr := io.TeeReader(r, sum)
	get := func() (uint64, error) {
		var v uint64
		err := binary.Read(tr, binary.LittleEndian, &v)
		return v, err
	}
	// startSeq, ceiling, halted flag: value-unchecked here (any values are
	// legal for some budget), but they feed the CRC.
	if _, err := get(); err != nil {
		return fmt.Errorf("trace spill: short header: %w", err)
	}
	if _, err := get(); err != nil {
		return fmt.Errorf("trace spill: short header: %w", err)
	}
	var hb [1]byte
	if _, err := io.ReadFull(tr, hb[:]); err != nil {
		return fmt.Errorf("trace spill: short header: %w", err)
	}
	nchunks, err := get()
	if err != nil || nchunks > 1<<24 {
		return fmt.Errorf("trace spill: bad chunk count")
	}
	for ci := uint64(0); ci < nchunks; ci++ {
		if _, err := readChunk(tr, get); err != nil {
			return fmt.Errorf("trace spill: chunk %d: %w", ci, err)
		}
	}
	var fileCRC uint32
	if err := binary.Read(r, binary.LittleEndian, &fileCRC); err != nil {
		return fmt.Errorf("trace spill: missing CRC trailer: %w", err)
	}
	if fileCRC != sum.Sum32() {
		return fmt.Errorf("trace spill: CRC mismatch")
	}
	// Anything after the trailer is foreign bytes appended to the file.
	if _, err := r.ReadByte(); err != io.EOF {
		return fmt.Errorf("trace spill: trailing garbage")
	}
	return nil
}

func readChunk(r io.Reader, get func() (uint64, error)) (*chunk, error) {
	c := &chunk{}
	var err error
	if c.baseSeq, err = get(); err != nil {
		return nil, err
	}
	if c.basePC, err = get(); err != nil {
		return nil, err
	}
	n, err := get()
	if err != nil || n > chunkRecords {
		return nil, fmt.Errorf("trace spill: bad chunk size")
	}
	c.n = int(n)
	ni, err := get()
	if err != nil || ni != n {
		return nil, fmt.Errorf("trace spill: inst column mismatch")
	}
	c.insts = make([]isa.Instruction, ni)
	var raw [8]byte
	regOK := func(b byte) bool { return isa.Reg(b).Valid() || isa.Reg(b) == isa.RegNone }
	for i := range c.insts {
		if _, err := io.ReadFull(r, raw[:]); err != nil {
			return nil, err
		}
		if !isa.Op(raw[0]).Valid() || !regOK(raw[1]) || !regOK(raw[2]) || !regOK(raw[3]) {
			return nil, fmt.Errorf("trace spill: invalid instruction encoding")
		}
		c.insts[i] = isa.Instruction{
			Op:  isa.Op(raw[0]),
			Rd:  isa.Reg(raw[1]),
			Rs1: isa.Reg(raw[2]),
			Rs2: isa.Reg(raw[3]),
			Imm: int32(binary.LittleEndian.Uint32(raw[4:])),
		}
	}
	readBlob := func(max uint64) ([]byte, error) {
		ln, err := get()
		if err != nil || ln > max {
			return nil, fmt.Errorf("trace spill: bad column length")
		}
		b := make([]byte, ln)
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, err
		}
		return b, nil
	}
	if c.taken, err = readBlob(chunkRecords); err != nil {
		return nil, err
	}
	if c.addrs, err = readBlob(10 * chunkRecords); err != nil {
		return nil, err
	}
	nt, err := get()
	if err != nil || nt > chunkRecords {
		return nil, fmt.Errorf("trace spill: bad target count")
	}
	c.targets = make([]uint64, nt)
	for i := range c.targets {
		if c.targets[i], err = get(); err != nil {
			return nil, err
		}
	}
	return c, nil
}
