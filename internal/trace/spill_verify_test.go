package trace

// VerifySpillFile is the scrub hook internal/lab/store uses to audit the
// trace spill directory: it must accept exactly the files load would
// serve and reject every corruption a disk can produce — any bit flipped
// anywhere, any truncation, appended garbage.

import (
	"os"
	"path/filepath"
	"testing"

	"flywheel/internal/asm"
	"flywheel/internal/emu"
)

// writeRealSpill records the test program through the cache and returns
// the spill file's path.
func writeRealSpill(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	c := NewCache(Policy{})
	c.SetSpillDir(dir)
	g := c.Acquire("w", 0, 0, nil)
	if g.Record == nil {
		t.Fatal("first acquisition must record")
	}
	prog, err := asm.Assemble("trace-test.s", testProgram)
	if err != nil {
		t.Fatal(err)
	}
	trc := NewRecorder(g.Record, emu.NewStream(emu.New(prog), 0))
	buf := make([]emu.Trace, 64)
	for trc.Fill(buf) > 0 {
	}
	c.FinishRecorder(trc, nil)
	matches, err := filepath.Glob(filepath.Join(dir, "*.trace"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("spill files: %v (err %v)", matches, err)
	}
	return matches[0]
}

func TestVerifySpillFileAcceptsHealthy(t *testing.T) {
	if err := VerifySpillFile(writeRealSpill(t)); err != nil {
		t.Fatalf("healthy spill rejected: %v", err)
	}
}

// TestVerifySpillFileCatchesEveryBitflip: flipping any single bit of the
// file must fail verification — magic and version by value, everything
// else through the CRC trailer.
func TestVerifySpillFileCatchesEveryBitflip(t *testing.T) {
	path := writeRealSpill(t)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Every byte would take minutes on a big trace; stride through the
	// file plus always-check the header and trailer regions.
	offsets := map[int]bool{}
	for off := 0; off < len(orig); off += 1 + len(orig)/256 {
		offsets[off] = true
	}
	for off := 0; off < 16 && off < len(orig); off++ {
		offsets[off] = true // magic + version
	}
	for off := len(orig) - 4; off < len(orig); off++ {
		offsets[off] = true // CRC trailer
	}
	for off := range offsets {
		mut := append([]byte(nil), orig...)
		mut[off] ^= 0x10
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := VerifySpillFile(path); err == nil {
			t.Fatalf("bit flip at offset %d passed verification", off)
		}
	}
}

func TestVerifySpillFileCatchesTruncationAndGarbage(t *testing.T) {
	path := writeRealSpill(t)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, keep := range []int{0, 3, len(orig) / 3, len(orig) - 1} {
		if err := os.WriteFile(path, orig[:keep], 0o644); err != nil {
			t.Fatal(err)
		}
		if err := VerifySpillFile(path); err == nil {
			t.Fatalf("truncation to %d of %d bytes passed verification", keep, len(orig))
		}
	}
	if err := os.WriteFile(path, append(append([]byte(nil), orig...), 0xFF), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := VerifySpillFile(path); err == nil {
		t.Fatal("trailing garbage passed verification")
	}
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := VerifySpillFile(path); err != nil {
		t.Fatalf("restored file rejected: %v", err)
	}
}
