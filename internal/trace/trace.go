// Package trace implements the record-once, replay-many dynamic-trace
// cache. A design-space sweep evaluates the same workload at many timing
// points — architectures, clock boosts, technology nodes — whose retired
// instruction streams are identical: only the timing differs. The first run
// of a workload therefore records the functional emulator's post-warm-up
// trace into a compact columnar buffer while its own timing core consumes
// it (the recorder is a pass-through), and every other grid point replays
// the recording from memory instead of re-executing the emulator.
//
// Recordings are chunked (see encode.go): the recorder publishes each
// filled chunk immediately, so concurrent readers replay the prefix while
// recording is still in progress, sleeping only when they catch up to the
// recording head. A reader never deadlocks on an abandoned recording:
// aborting a recording (timing-core error, memory-cap overflow) fails it,
// and failed-recording readers fall back to live functional emulation,
// fast-forwarded past the records they already consumed.
//
// Shorter instruction budgets replay a prefix of a longer recording; the
// per-workload cache layer (cache.go) keys usability on the recorded
// ceiling, so one recording at the sweep's largest budget serves every
// smaller budget in the grid.
package trace

import (
	"fmt"
	"sync"

	"flywheel/internal/emu"
)

// recState is the lifecycle of a recording.
type recState uint8

const (
	stateRecording recState = iota
	stateDone
	stateFailed
)

// Recording is one workload's recorded dynamic trace: an append-only
// sequence of immutable columnar chunks plus completion metadata. One
// goroutine records (through a Recorder); any number of goroutines replay
// concurrently (through Readers).
type Recording struct {
	key      string
	startSeq uint64 // Seq of the first record (the warm point's retired count)
	// ceiling is the instruction budget the recording was made under
	// (0 = run to completion). A recording that ended by halt serves any
	// budget; a truncated one serves budgets up to the ceiling.
	ceiling uint64

	mu     sync.Mutex
	cond   *sync.Cond
	chunks []*chunk
	total  uint64 // records published (sum over chunks)
	bytes  int64  // resident encoded bytes (published chunks)
	st     recState
	halted bool  // the machine halted before the ceiling (complete program)
	err    error // stream error observed while recording, replayed to full readers

	// onPublish, set by the owning cache, accounts published bytes and
	// vetoes further storage when the cache's memory cap is exceeded.
	onPublish func(delta int64) bool
}

// newRecording returns an empty in-progress recording.
func newRecording(key string, startSeq, ceiling uint64) *Recording {
	r := &Recording{key: key, startSeq: startSeq, ceiling: ceiling}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// StartSeq returns the sequence number of the first record.
func (r *Recording) StartSeq() uint64 { return r.startSeq }

// Records returns the number of records published so far.
func (r *Recording) Records() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Bytes returns the resident encoded size of the published chunks.
func (r *Recording) Bytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bytes
}

// Complete reports whether the recording finished successfully, and whether
// the program halted within it.
func (r *Recording) Complete() (done, halted bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.st == stateDone, r.halted
}

// usableFor reports whether a replay with the given budget (0 = run to
// completion) can be served entirely from this recording.
func (r *Recording) usableFor(budget uint64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch r.st {
	case stateFailed:
		return false
	case stateDone:
		if r.halted {
			return true
		}
	}
	// In progress or truncated at the ceiling: the budget must fit.
	if r.ceiling == 0 {
		return true // recording runs to halt
	}
	return budget > 0 && budget <= r.ceiling
}

// publish appends a finished chunk and wakes readers waiting at the head.
// It returns false when the cache's memory cap vetoed the publication; the
// caller must then abort the recording.
func (r *Recording) publish(c *chunk) bool {
	if c == nil || c.n == 0 {
		return true
	}
	size := c.sizeBytes()
	if r.onPublish != nil && !r.onPublish(size) {
		return false
	}
	r.mu.Lock()
	r.chunks = append(r.chunks, c)
	r.total += uint64(c.n)
	r.bytes += size
	r.mu.Unlock()
	r.cond.Broadcast()
	return true
}

// markDone finalizes a successful recording.
func (r *Recording) markDone(halted bool, streamErr error) {
	r.mu.Lock()
	r.st = stateDone
	r.halted = halted
	r.err = streamErr
	r.mu.Unlock()
	r.cond.Broadcast()
}

// Fail marks the recording unusable and wakes waiting readers, which then
// fall back to live emulation (for a granted recording whose run could not
// even start; a started run fails through Recorder.Abort).
func (r *Recording) Fail() { r.fail() }

// fail marks the recording unusable and wakes waiting readers, which then
// fall back to live emulation. Published chunks stay readable (a reader
// mid-prefix keeps replaying until it reaches the head).
func (r *Recording) fail() {
	r.mu.Lock()
	r.st = stateFailed
	r.mu.Unlock()
	r.cond.Broadcast()
}

// Recorder adapts a live emulator stream into the same Next/Fill iterator
// contract (pipe.InstSource / pipe.Filler) while teeing every delivered
// record into a Recording. It is a strict pass-through: the consuming
// timing core observes exactly the records the bare stream would have
// produced, in the same order, with the same early-halt behavior.
type Recorder struct {
	src  *emu.Stream
	rec  *Recording
	enc  encoder
	dead bool // recording aborted (cap veto or chain break); keep passing through
}

// NewRecorder wraps the stream, recording into rec.
func NewRecorder(rec *Recording, src *emu.Stream) *Recorder {
	return &Recorder{src: src, rec: rec}
}

// observe encodes one delivered record.
func (t *Recorder) observe(tr emu.Trace) {
	if t.dead {
		return
	}
	full, err := t.enc.appendRecord(tr)
	if err != nil {
		// A sequential-contract violation means the encoding would be
		// wrong; drop the recording, never the consumer's stream.
		t.abort()
		return
	}
	if full != nil && !t.rec.publish(full) {
		t.abort()
	}
}

func (t *Recorder) abort() {
	t.dead = true
	t.rec.fail()
}

// Next delivers the next record (pipe.InstSource).
func (t *Recorder) Next() (emu.Trace, bool) {
	tr, ok := t.src.Next()
	if ok {
		t.observe(tr)
	}
	return tr, ok
}

// Fill batch-delivers records into the caller's buffer (pipe.Filler).
func (t *Recorder) Fill(buf []emu.Trace) int {
	n := t.src.Fill(buf)
	for _, tr := range buf[:n] {
		t.observe(tr)
	}
	return n
}

// Err reports the underlying stream's terminating error, if any.
func (t *Recorder) Err() error { return t.src.Err() }

// Finish completes the recording after the consuming run ended. Records
// the consumer did not pull (it stopped early on a timing-model error) are
// drained from the live stream so the recording still covers the full
// budget, then the final partial chunk is published and the recording is
// marked done. Harmless to call on an already-aborted recorder.
func (t *Recorder) Finish() {
	if !t.dead {
		var buf [256]emu.Trace
		for {
			n := t.src.Fill(buf[:])
			for _, tr := range buf[:n] {
				t.observe(tr)
			}
			if n == 0 || t.dead {
				break
			}
		}
	}
	if t.dead {
		return
	}
	if !t.rec.publish(t.enc.take()) {
		t.abort()
		return
	}
	t.rec.markDone(t.src.Machine().Halted, t.src.Err())
}

// Abort drops the recording (the consuming run failed in a way that makes
// draining pointless). The pass-through contract is unaffected.
func (t *Recorder) Abort() { t.abort() }

// Reader replays a recording through the Next/Fill iterator contract. A
// reader that catches up to an in-progress recording blocks until more
// chunks are published; if the recording fails, the reader transparently
// falls back to a live emulator stream fast-forwarded past the records it
// already delivered (the fallback factory is supplied by the simulator).
//
// The hot path is lock-free: chunks are immutable once published, so the
// reader keeps a private snapshot of the chunk table and the published
// record count and only takes the recording's lock when the cursor reaches
// the snapshot's edge. The Flywheel core's oracle window pulls one record
// at a time, so Next in particular must cost no more than an array read.
type Reader struct {
	rec   *Recording
	limit uint64 // max records to deliver; 0 = all recorded
	count uint64 // records delivered

	// Local snapshot of the published state (refreshed under the lock).
	chunks []*chunk
	avail  uint64
	// final is the recording's observed end state (stateRecording while it
	// is still in progress); when final, avail is the full extent.
	final recState

	ci  int // index of the chunk under the cursor
	dec decoder

	fallback     func(skip uint64) (*emu.Stream, error)
	live         *emu.Stream
	fallbackErr  error
	fallbackUsed bool
}

// NewReader returns a replay cursor over rec delivering at most limit
// records (0 = everything recorded). The fallback factory builds a live
// stream positioned skip records past the recording's start; it is invoked
// only if the recording fails mid-read.
func NewReader(rec *Recording, limit uint64, fallback func(skip uint64) (*emu.Stream, error)) *Reader {
	return &Reader{rec: rec, limit: limit, fallback: fallback}
}

// FellBack reports whether the reader switched to live emulation.
func (r *Reader) FellBack() bool { return r.fallbackUsed }

// refresh blocks until records beyond the cursor are published or the
// recording reaches a final state, then re-snapshots the published chunks.
// It reports whether records beyond the cursor are now available; on false
// the recording ended, failed (fallback activated) or is irrecoverable.
func (r *Reader) refresh() bool {
	rec := r.rec
	rec.mu.Lock()
	for rec.total <= r.count && rec.st == stateRecording {
		rec.cond.Wait()
	}
	r.chunks = rec.chunks
	r.avail = rec.total
	r.final = rec.st
	rec.mu.Unlock()
	if r.count < r.avail {
		return true
	}
	if r.final == stateFailed {
		r.switchToLive()
	}
	return false
}

// switchToLive activates the fallback stream.
func (r *Reader) switchToLive() {
	r.fallbackUsed = true
	if r.fallback == nil {
		r.fallbackErr = fmt.Errorf("trace: recording %q failed and reader has no fallback", r.rec.key)
		return
	}
	live, err := r.fallback(r.count)
	if err != nil {
		r.fallbackErr = fmt.Errorf("trace: fallback for %q: %w", r.rec.key, err)
		return
	}
	r.live = live
}

// advanceChunk positions the decoder on the cursor's chunk. The cursor is
// known to be inside the available snapshot.
func (r *Reader) advanceChunk() {
	if r.dec.c != nil {
		r.ci++
	}
	r.dec = newDecoder(r.chunks[r.ci])
}

// Fill batch-delivers records into the caller's buffer (pipe.Filler). Like
// emu.Stream.Fill it returns the records produced before any terminating
// condition: limit, end of recording, or a recorded mid-stream fault.
func (r *Reader) Fill(buf []emu.Trace) int {
	if r.live != nil {
		n := r.live.Fill(buf)
		r.count += uint64(n)
		return n
	}
	if r.fallbackErr != nil {
		return 0
	}
	want := uint64(len(buf))
	if r.limit > 0 {
		if r.count >= r.limit {
			return 0
		}
		if left := r.limit - r.count; left < want {
			want = left
		}
	}
	n := 0
	for uint64(n) < want {
		if r.count >= r.avail {
			exhausted := r.final != stateRecording
			if exhausted && r.final == stateFailed && r.live == nil {
				r.switchToLive()
			} else if !exhausted {
				exhausted = !r.refresh()
			}
			if exhausted {
				if r.live != nil {
					m := r.live.Fill(buf[n:int(want)])
					r.count += uint64(m)
					return n + m
				}
				break // done: everything recorded was delivered
			}
		}
		if r.dec.c == nil || r.dec.i >= r.dec.c.n {
			r.advanceChunk()
		}
		c := r.dec.c
		stop := r.avail - r.count // records left in the snapshot
		if rem := uint64(c.n - r.dec.i); rem < stop {
			stop = rem
		}
		if left := want - uint64(n); left < stop {
			stop = left
		}
		for k := uint64(0); k < stop; k++ {
			buf[n] = r.dec.next()
			n++
		}
		r.count += stop
	}
	return n
}

// Next delivers one record (pipe.InstSource). The common case — the next
// record sits decoded-side in the current chunk, under the limit — touches
// no lock and no buffer.
func (r *Reader) Next() (emu.Trace, bool) {
	if r.live == nil && r.fallbackErr == nil &&
		r.count < r.avail && (r.limit == 0 || r.count < r.limit) &&
		r.dec.c != nil && r.dec.i < r.dec.c.n {
		r.count++
		return r.dec.next(), true
	}
	var one [1]emu.Trace
	if r.Fill(one[:]) == 0 {
		return emu.Trace{}, false
	}
	return one[0], true
}

// Err reports a terminating error: the recorded stream's own fault when the
// reader consumed the full recording, or a fallback failure. A reader that
// stopped at its own limit reports nil, mirroring a budgeted live stream.
func (r *Reader) Err() error {
	if r.fallbackErr != nil {
		return r.fallbackErr
	}
	if r.live != nil {
		return r.live.Err()
	}
	if r.limit > 0 && r.count >= r.limit {
		return nil
	}
	r.rec.mu.Lock()
	defer r.rec.mu.Unlock()
	if r.count >= r.rec.total && r.rec.st == stateDone {
		return r.rec.err
	}
	return nil
}
