package trace

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"flywheel/internal/asm"
	"flywheel/internal/emu"
)

// testProgram exercises every reconstruction path of the encoding: ALU
// chains, taken and not-taken branches, loads and stores with mixed
// strides, direct jumps, an indirect call/return pair (JALR), and halt.
const testProgram = `
        .data
buf:    .space 256
        .text
        la   r2, buf
        li   r1, 40
        li   r10, 0
loop:   ld   r3, 0(r2)
        addi r3, r3, 3
        sd   r3, 8(r2)
        lw   r4, 16(r2)
        sb   r4, 1(r2)
        jal  r31, sub
        addi r1, r1, -1
        bne  r1, r0, loop
        j    out
sub:    add  r10, r10, r3
        jalr r0, r31
out:    halt
`

func liveRecords(t *testing.T, limit uint64) []emu.Trace {
	t.Helper()
	prog, err := asm.Assemble("trace-test.s", testProgram)
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(prog)
	s := emu.NewStream(m, limit)
	var out []emu.Trace
	for {
		tr, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, tr)
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func record(t *testing.T, limit uint64) (*Recording, []emu.Trace) {
	t.Helper()
	prog, err := asm.Assemble("trace-test.s", testProgram)
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(prog)
	rec := newRecording("k", 0, limit)
	tr := NewRecorder(rec, emu.NewStream(m, limit))
	var seen []emu.Trace
	buf := make([]emu.Trace, 7) // odd size: chunks fill mid-buffer
	for {
		n := tr.Fill(buf)
		if n == 0 {
			break
		}
		seen = append(seen, buf[:n]...)
	}
	tr.Finish()
	return rec, seen
}

func replay(t *testing.T, rec *Recording, limit uint64) []emu.Trace {
	t.Helper()
	r := NewReader(rec, limit, nil)
	var out []emu.Trace
	buf := make([]emu.Trace, 13)
	for {
		n := r.Fill(buf)
		if n == 0 {
			break
		}
		out = append(out, buf[:n]...)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRoundTripFullRun(t *testing.T) {
	live := liveRecords(t, 0)
	rec, seen := record(t, 0)
	if !reflect.DeepEqual(live, seen) {
		t.Fatal("recorder pass-through altered the stream")
	}
	if done, halted := rec.Complete(); !done || !halted {
		t.Fatalf("recording done=%v halted=%v, want true/true", done, halted)
	}
	got := replay(t, rec, 0)
	if len(got) != len(live) {
		t.Fatalf("replayed %d records, live produced %d", len(got), len(live))
	}
	for i := range got {
		if got[i] != live[i] {
			t.Fatalf("record %d differs:\n live  %+v\n replay %+v", i, live[i], got[i])
		}
	}
}

func TestPrefixReplayAtEveryBudget(t *testing.T) {
	live := liveRecords(t, 0)
	rec, _ := record(t, 0)
	for _, budget := range []uint64{1, 2, 5, uint64(len(live)) - 1, uint64(len(live)), uint64(len(live)) + 10} {
		got := replay(t, rec, budget)
		want := live
		if budget < uint64(len(live)) {
			want = live[:budget]
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("budget %d: prefix replay diverged (got %d records, want %d)", budget, len(got), len(want))
		}
	}
}

func TestTruncatedRecordingServesSmallerBudgets(t *testing.T) {
	rec, seen := record(t, 100)
	if done, halted := rec.Complete(); !done || halted {
		t.Fatalf("recording done=%v halted=%v, want true/false", done, halted)
	}
	if !rec.usableFor(100) || !rec.usableFor(17) {
		t.Fatal("recording should cover budgets <= its ceiling")
	}
	if rec.usableFor(101) || rec.usableFor(0) {
		t.Fatal("truncated recording must not claim budgets past its ceiling")
	}
	got := replay(t, rec, 17)
	if !reflect.DeepEqual(got, seen[:17]) {
		t.Fatal("prefix of truncated recording diverged")
	}
}

func TestConcurrentReaderStreamsBehindRecorder(t *testing.T) {
	prog, err := asm.Assemble("trace-test.s", testProgram)
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(prog)
	rec := newRecording("k", 0, 0)
	trc := NewRecorder(rec, emu.NewStream(m, 0))

	var wg sync.WaitGroup
	wg.Add(1)
	var got []emu.Trace
	go func() {
		defer wg.Done()
		r := NewReader(rec, 0, nil)
		buf := make([]emu.Trace, 64)
		for {
			n := r.Fill(buf) // blocks while it is ahead of the recorder
			if n == 0 {
				return
			}
			got = append(got, buf[:n]...)
		}
	}()

	var want []emu.Trace
	buf := make([]emu.Trace, 64)
	for {
		n := trc.Fill(buf)
		if n == 0 {
			break
		}
		want = append(want, buf[:n]...)
	}
	trc.Finish()
	wg.Wait()
	if !reflect.DeepEqual(got, want) {
		t.Fatal("concurrent reader saw a different stream than the recorder delivered")
	}
}

func TestFailedRecordingFallsBackMidStream(t *testing.T) {
	prog, err := asm.Assemble("trace-test.s", testProgram)
	if err != nil {
		t.Fatal(err)
	}
	live := liveRecords(t, 0)
	m := emu.New(prog)
	rec := newRecording("k", 0, 0)
	trc := NewRecorder(rec, emu.NewStream(m, 0))

	// Record ~3 chunks worth, then abort (as a dying timing run would).
	buf := make([]emu.Trace, 64)
	pulled := 0
	for pulled < 3*chunkRecords {
		n := trc.Fill(buf)
		if n == 0 {
			break
		}
		pulled += n
	}
	trc.Abort()

	fallback := func(skip uint64) (*emu.Stream, error) {
		fm := emu.New(prog)
		if _, err := fm.Run(skip); err != nil {
			return nil, err
		}
		return emu.NewStream(fm, 0), nil
	}
	r := NewReader(rec, 0, fallback)
	var got []emu.Trace
	for {
		n := r.Fill(buf)
		if n == 0 {
			break
		}
		got = append(got, buf[:n]...)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if !r.FellBack() {
		t.Fatal("reader should have fallen back to live emulation")
	}
	if !reflect.DeepEqual(got, live) {
		t.Fatalf("fallback replay diverged: got %d records, want %d", len(got), len(live))
	}
}

func TestCacheGrantsAndStats(t *testing.T) {
	c := NewCache(Policy{})
	g := c.Acquire("w", 0, 500, nil)
	if g.Record == nil {
		t.Fatal("first acquisition must record")
	}
	// In-flight, covered budget: replay grant (would block; don't read it).
	if g2 := c.Acquire("w", 0, 100, nil); g2.Replay == nil {
		t.Fatal("covered budget during recording must replay")
	}
	// In-flight, larger budget: bypass.
	if g3 := c.Acquire("w", 0, 900, nil); g3.Record != nil || g3.Replay != nil {
		t.Fatal("uncovered budget during recording must bypass")
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 1 || s.Bypasses != 1 {
		t.Fatalf("stats = %+v, want 1 miss / 1 hit / 1 bypass", s)
	}

	// Complete the recording truncated at its ceiling; a bigger budget then
	// replaces it with a fresh recording, a covered one replays.
	g.Record.markDone(false, nil)
	if g4 := c.Acquire("w", 0, 900, nil); g4.Record == nil {
		t.Fatal("budget past a truncated recording's ceiling must re-record")
	}
	if g5 := c.Acquire("w", 0, 900, nil); g5.Replay == nil {
		t.Fatal("second covered acquisition must replay the in-flight replacement")
	}
}

func TestCacheCapBlacklistsOversizedKey(t *testing.T) {
	c := NewCache(Policy{MaxBytes: 1}) // nothing fits
	prog, err := asm.Assemble("trace-test.s", testProgram)
	if err != nil {
		t.Fatal(err)
	}
	g := c.Acquire("w", 0, 0, nil)
	if g.Record == nil {
		t.Fatal("first acquisition must record")
	}
	trc := NewRecorder(g.Record, emu.NewStream(emu.New(prog), 0))
	buf := make([]emu.Trace, 64)
	for trc.Fill(buf) > 0 {
	}
	trc.Finish()
	if done, _ := g.Record.Complete(); done {
		t.Fatal("recording over the cap must fail, not complete")
	}
	if g2 := c.Acquire("w", 0, 0, nil); g2.Record != nil || g2.Replay != nil {
		t.Fatal("cap-vetoed key must bypass on later acquisitions")
	}
	s := c.Stats()
	if s.ResidentBytes != 0 {
		t.Fatalf("vetoed recording left %d resident bytes", s.ResidentBytes)
	}
}

func TestSpillRoundTrip(t *testing.T) {
	dir := t.TempDir()
	live := liveRecords(t, 0)

	c := NewCache(Policy{})
	c.SetSpillDir(dir)
	g := c.Acquire("w", 0, 0, nil)
	if g.Record == nil {
		t.Fatal("first acquisition must record")
	}
	prog, err := asm.Assemble("trace-test.s", testProgram)
	if err != nil {
		t.Fatal(err)
	}
	trc := NewRecorder(g.Record, emu.NewStream(emu.New(prog), 0))
	buf := make([]emu.Trace, 64)
	for trc.Fill(buf) > 0 {
	}
	c.FinishRecorder(trc, nil)
	if s := c.Stats(); s.SpillSaves != 1 {
		t.Fatalf("SpillSaves = %d, want 1", s.SpillSaves)
	}

	// A second cache over the same directory — a new process — replays
	// without recording anything.
	c2 := NewCache(Policy{})
	c2.SetSpillDir(dir)
	g2 := c2.Acquire("w", 0, 0, nil)
	if g2.Replay == nil {
		t.Fatal("warm spill directory must serve a replay grant")
	}
	var got []emu.Trace
	for {
		n := g2.Replay.Fill(buf)
		if n == 0 {
			break
		}
		got = append(got, buf[:n]...)
	}
	if !reflect.DeepEqual(got, live) {
		t.Fatal("spill-revived replay diverged from live execution")
	}
	s := c2.Stats()
	if s.SpillLoads != 1 || s.Misses != 0 {
		t.Fatalf("stats = %+v, want 1 spill load and 0 misses", s)
	}

	// Wrong warm point: must read as a miss.
	c3 := NewCache(Policy{})
	c3.SetSpillDir(dir)
	if g3 := c3.Acquire("w", 7, 0, nil); g3.Record == nil {
		t.Fatal("mismatched startSeq must not revive the spill file")
	}
}

func TestSpillRejectsCorruptedPayload(t *testing.T) {
	dir := t.TempDir()
	c := NewCache(Policy{})
	c.SetSpillDir(dir)
	g := c.Acquire("w", 0, 0, nil)
	prog, err := asm.Assemble("trace-test.s", testProgram)
	if err != nil {
		t.Fatal(err)
	}
	trc := NewRecorder(g.Record, emu.NewStream(emu.New(prog), 0))
	buf := make([]emu.Trace, 64)
	for trc.Fill(buf) > 0 {
	}
	c.FinishRecorder(trc, nil)

	// Flip one byte in the middle of the payload: structurally plausible,
	// semantically wrong. The CRC trailer must turn it into a miss instead
	// of a silent wrong instruction stream.
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("expected one spill file, got %v (%v)", entries, err)
	}
	path := filepath.Join(dir, entries[0].Name())
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := NewCache(Policy{})
	c2.SetSpillDir(dir)
	if g2 := c2.Acquire("w", 0, 0, nil); g2.Record == nil {
		t.Fatal("corrupted spill file must read as a miss and re-record")
	}
	if s := c2.Stats(); s.SpillLoads != 0 {
		t.Fatalf("corrupted file counted as a spill load: %+v", s)
	}
}

func TestSetPolicyClearsCapBlacklist(t *testing.T) {
	c := NewCache(Policy{MaxBytes: 1})
	prog, err := asm.Assemble("trace-test.s", testProgram)
	if err != nil {
		t.Fatal(err)
	}
	g := c.Acquire("w", 0, 0, nil)
	trc := NewRecorder(g.Record, emu.NewStream(emu.New(prog), 0))
	buf := make([]emu.Trace, 64)
	for trc.Fill(buf) > 0 {
	}
	trc.Finish() // vetoed by the 1-byte cap: key blacklisted
	if g2 := c.Acquire("w", 0, 0, nil); g2.Record != nil || g2.Replay != nil {
		t.Fatal("capped key must bypass")
	}
	// Raising the cap must lift the blacklist.
	c.SetPolicy(Policy{})
	if g3 := c.Acquire("w", 0, 0, nil); g3.Record == nil {
		t.Fatal("raised cap must allow the key to record again")
	}
}
