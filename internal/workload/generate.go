package workload

import (
	"fmt"
	"strings"
)

// Code-footprint expansion. The namesake SPEC benchmarks execute hundreds of
// kilobytes of distinct code, so the Execution Cache keeps missing and the
// machine spends real time in trace-creation mode (the paper's average EC
// residency is 88%, with vortex under 60%). A ten-line loop kernel cannot
// reproduce that: its handful of paths gets covered by a few traces and the
// machine never leaves trace-execution mode. The branchy kernels therefore
// unroll their hot region into many structurally varied copies — like the
// namesakes, the same *logical* work is spread over a large static code
// footprint, so stored traces compete for EC capacity and the front-end
// keeps contributing.

// genGCC builds the interpreter kernel: `copies` unrolled dispatch bodies,
// each with its own branch ladder over 8 opcodes, chained in a ring.
func genGCC(copies int) string {
	var b strings.Builder
	b.WriteString(`
; ---- init: 32 KiB of opcodes (0..7) ----
	la  r1, ops
	li  r2, 4096
	li  r3, 123456789
gfill:
	slli r4, r3, 13
	xor  r3, r3, r4
	srli r4, r3, 7
	xor  r3, r3, r4
	slli r4, r3, 17
	xor  r3, r3, r4
	andi r5, r3, 7
	sd   r5, 0(r1)
	addi r1, r1, 8
	addi r2, r2, -1
	bnez r2, gfill
; ---- interpreter: ring of unrolled dispatch bodies ----
	li  r20, 28           ; outer passes
gpass:
	la  r1, ops
	li  r2, 4096
	li  r10, 0            ; acc
	li  r11, 1            ; reg b
`)
	for i := 0; i < copies; i++ {
		fmt.Fprintf(&b, `g%[1]d:
	ld   r5, 0(r1)
	beqz r5, g%[1]dop0
	addi r6, r5, -1
	beqz r6, g%[1]dop1
	addi r6, r5, -2
	beqz r6, g%[1]dop2
	addi r6, r5, -3
	beqz r6, g%[1]dop3
	addi r6, r5, -4
	beqz r6, g%[1]dop4
	xor  r10, r10, r5
	addi r10, r10, %[2]d
	b    g%[1]dnext
g%[1]dop0:
	add  r10, r10, r11
	slli r7, r10, %[3]d
	xor  r10, r10, r7
	b    g%[1]dnext
g%[1]dop1:
	sub  r10, r10, r11
	srli r7, r10, %[4]d
	add  r10, r10, r7
	b    g%[1]dnext
g%[1]dop2:
	slli r11, r11, 1
	ori  r11, r11, 1
	b    g%[1]dnext
g%[1]dop3:
	srli r11, r11, 1
	ori  r11, r11, %[5]d
	b    g%[1]dnext
g%[1]dop4:
	mul  r12, r10, r11
	add  r10, r10, r12
g%[1]dnext:
	addi r1, r1, 8
	addi r2, r2, -1
	beqz r2, gdone
`, i, i+1, 1+i%5, 1+(i+2)%5, 1+i%3)
		fmt.Fprintf(&b, "\tb    g%d\n", (i+1)%copies)
	}
	b.WriteString(`gdone:
	addi r20, r20, -1
	bnez r20, gpass
	halt
.data
ops:
	.space 32768
`)
	return b.String()
}

// genParser builds the dictionary kernel with `copies` structurally varied
// binary-search bodies in a ring.
func genParser(copies int) string {
	var b strings.Builder
	b.WriteString(`
; ---- init: sorted dictionary keys (i*97) ----
	la  r1, dict
	li  r2, 4096
	li  r3, 0
pfill:
	sd   r3, 0(r1)
	addi r3, r3, 97
	addi r1, r1, 8
	addi r2, r2, -1
	bnez r2, pfill
	li  r20, 60000
	li  r9, 96525243      ; rng
`)
	for i := 0; i < copies; i++ {
		fmt.Fprintf(&b, `p%[1]d:
	slli r1, r9, 13
	xor  r9, r9, r1
	srli r1, r9, 7
	xor  r9, r9, r1
	slli r1, r9, 17
	xor  r9, r9, r1
	slli r2, r9, 46
	srli r2, r2, 46
	la   r3, dict
	li   r4, 0
	li   r5, 4095
p%[1]dbs:
	bgt  r4, r5, p%[1]ddone
	add  r6, r4, r5
	srli r6, r6, 1
	slli r7, r6, 3
	add  r7, r3, r7
	ld   r8, 0(r7)
	beq  r8, r2, p%[1]dfound
	blt  r8, r2, p%[1]dright
	addi r5, r6, -1
	addi r23, r23, %[2]d
	b    p%[1]dbs
p%[1]dright:
	addi r4, r6, 1
	xor  r24, r24, r6
	b    p%[1]dbs
p%[1]dfound:
	addi r22, r22, 1
p%[1]ddone:
	addi r20, r20, -1
	beqz r20, pend
`, i, 1+i%3)
		fmt.Fprintf(&b, "\tb    p%d\n", (i+1)%copies)
	}
	b.WriteString(`pend:
	halt
.data
dict:
	.space 32768
`)
	return b.String()
}

// genVortex builds the object-database kernel: `methods` distinct method
// bodies dispatched indirectly, each with data-dependent internal paths,
// over churning object types.
func genVortex(methods int) string {
	var b strings.Builder
	fmt.Fprintf(&b, `
; ---- init: 2048 objects of {type, a, b} and the method table ----
	la  r1, objs
	li  r2, 2048
	li  r3, 69069
ofill:
	slli r4, r3, 13
	xor  r3, r3, r4
	srli r4, r3, 7
	xor  r3, r3, r4
	slli r4, r3, 17
	xor  r3, r3, r4
	andi r5, r3, %d
	sd   r5, 0(r1)
	sd   r3, 8(r1)
	sd   r4, 16(r1)
	addi r1, r1, 24
	addi r2, r2, -1
	bnez r2, ofill
	la   r1, mtab
`, methods-1)
	for i := 0; i < methods; i++ {
		fmt.Fprintf(&b, "\tla   r2, m%d\n\tsd   r2, %d(r1)\n", i, i*8)
	}
	b.WriteString(`
; ---- transaction loop ----
	li  r20, 30
tpass:
	la  r10, objs
	li  r12, 2048
tloop:
	ld   r5, 0(r10)       ; type
	slli r6, r5, 3
	la   r7, mtab
	add  r7, r7, r6
	ld   r8, 0(r7)        ; method pointer
	jalr r31, r8          ; indirect call, data-dependent target
	ld   r5, 0(r10)       ; churn the type with mutating object state
	ld   r6, 8(r10)
	add  r5, r5, r6
`)
	fmt.Fprintf(&b, "\tandi r5, r5, %d\n", methods-1)
	b.WriteString(`	sd   r5, 0(r10)
	addi r10, r10, 24
	addi r12, r12, -1
	bnez r12, tloop
	addi r20, r20, -1
	bnez r20, tpass
	halt
`)
	for i := 0; i < methods; i++ {
		// Methods alternate shapes: field updates, data-dependent paths,
		// and calls through the shared helper; the padding sequences give
		// each body a distinct footprint.
		fmt.Fprintf(&b, `m%[1]d:
	ld   r2, 8(r10)
	ld   r3, 16(r10)
	andi r4, r2, %[2]d
	beqz r4, m%[1]dalt
	add  r3, r3, r2
	slli r4, r3, %[3]d
	xor  r3, r3, r4
	sd   r3, 16(r10)
	addi r2, r2, %[4]d
	sd   r2, 8(r10)
	ret
m%[1]dalt:
	xor  r2, r2, r3
	srli r4, r2, %[3]d
	add  r2, r2, r4
	sd   r2, 8(r10)
	mv   r28, r31
	call bump%[5]d
	mv   r31, r28
	ret
`, i, 1<<uint(i%4), 1+i%5, i+3, i%4)
	}
	for i := 0; i < 4; i++ {
		fmt.Fprintf(&b, `bump%[1]d:
	ld   r2, 16(r10)
	xor  r2, r2, r12
	addi r2, r2, %[2]d
	sd   r2, 16(r10)
	ret
`, i, i+1)
	}
	b.WriteString(`.data
objs:
	.space 49152
mtab:
	.space 256
`)
	return b.String()
}

// genBzip2 builds the block-sort kernel with `copies` varied partition
// bodies in a ring.
func genBzip2(copies int) string {
	var b strings.Builder
	b.WriteString(`
; ---- init keys ----
	la  r1, keys
	li  r2, 4096
	li  r3, 246353424
bfill:
	slli r4, r3, 13
	xor  r3, r3, r4
	srli r4, r3, 7
	xor  r3, r3, r4
	slli r4, r3, 17
	xor  r3, r3, r4
	sd   r3, 0(r1)
	addi r1, r1, 8
	addi r2, r2, -1
	bnez r2, bfill
	li  r20, 48           ; passes
bpass:
	la  r10, keys
	li  r12, 4095
	ld  r9, 0(r10)        ; pivot = first key
`)
	for i := 0; i < copies; i++ {
		fmt.Fprintf(&b, `b%[1]d:
	ld   r1, 8(r10)
	blt  r1, r9, b%[1]dswap
	xor  r21, r21, r1
	b    b%[1]dnext
b%[1]dswap:
	ld   r2, 0(r10)
	sd   r1, 0(r10)
	sd   r2, 8(r10)
	addi r22, r22, %[2]d
b%[1]dnext:
	addi r10, r10, 8
	addi r12, r12, -1
	beqz r12, bdone
`, i, i+1)
		fmt.Fprintf(&b, "\tb    b%d\n", (i+1)%copies)
	}
	b.WriteString(`bdone:
	addi r20, r20, -1
	bnez r20, bpass
	halt
.data
keys:
	.space 32768
`)
	return b.String()
}
