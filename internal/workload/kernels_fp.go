package workload

// Floating-point benchmark proxies.

func init() {
	register(&Workload{
		Name:      "mesa",
		WarmLabel: "mpass",
		Suite:     "SPEC2000",
		FP:        true,
		Description: "3D-graphics proxy: a 3x4 matrix transform applied to an array of " +
			"vertices, the classic geometry-pipeline inner loop. Long chains of " +
			"independent FP multiplies and adds with perfectly predictable control: " +
			"high ILP, near-total EC residency.",
		Source: `
; ---- init: 4096 vertices (x,y,z) from a counter ----
	la  r1, verts
	li  r2, 2048
	li  r3, 1
minit:
	fcvtif f1, r3
	fsd  f1, 0(r1)
	addi r4, r3, 7
	fcvtif f2, r4
	fsd  f2, 8(r1)
	addi r4, r3, 13
	fcvtif f3, r4
	fsd  f3, 16(r1)
	addi r3, r3, 3
	addi r1, r1, 24
	addi r2, r2, -1
	bnez r2, minit
; ---- matrix coefficients in f20..f31 ----
	la  r1, mat
	fld f20, 0(r1)
	fld f21, 8(r1)
	fld f22, 16(r1)
	fld f23, 24(r1)
	fld f24, 32(r1)
	fld f25, 40(r1)
	fld f26, 48(r1)
	fld f27, 56(r1)
	fld f28, 64(r1)
	fld f29, 72(r1)
	fld f30, 80(r1)
	fld f31, 88(r1)
; ---- transform passes ----
	li  r20, 24
mpass:
	la  r10, verts
	li  r12, 2048
mloop:
	fld  f1, 0(r10)
	fld  f2, 8(r10)
	fld  f3, 16(r10)
	fmul f4, f1, f20      ; x' = x*m00 + y*m01 + z*m02 + m03
	fmul f5, f2, f21
	fmul f6, f3, f22
	fadd f4, f4, f5
	fadd f4, f4, f6
	fadd f4, f4, f23
	fmul f7, f1, f24      ; y'
	fmul f8, f2, f25
	fmul f9, f3, f26
	fadd f7, f7, f8
	fadd f7, f7, f9
	fadd f7, f7, f27
	fmul f10, f1, f28     ; z'
	fmul f11, f2, f29
	fmul f12, f3, f30
	fadd f10, f10, f11
	fadd f10, f10, f12
	fadd f10, f10, f31
	fsd  f4, 0(r10)
	fsd  f7, 8(r10)
	fsd  f10, 16(r10)
	addi r10, r10, 24
	addi r12, r12, -1
	bnez r12, mloop
	addi r20, r20, -1
	bnez r20, mpass
	halt
.data
mat:
	.double 0.99, 0.01, -0.02, 0.1
	.double -0.01, 0.98, 0.03, 0.2
	.double 0.02, -0.03, 0.97, 0.3
verts:
	.space 49152
`,
	})

	register(&Workload{
		Name:      "equake",
		WarmLabel: "epass",
		Suite:     "SPEC2000",
		FP:        true,
		Description: "Earthquake-simulation proxy: sparse matrix-vector multiply with " +
			"indirection — value and column-index arrays drive gathered loads from a " +
			"512 KiB vector, producing L1/L2 misses under predictable loop control. " +
			"Like its namesake it spends nearly all time in traces but is memory " +
			"bound; the paper reports its energy savings among the largest.",
		Source: `
; ---- init: 16384 nonzeros: values and spread column indices; x vector ----
	la  r1, cols
	la  r2, vals
	li  r3, 2048
	li  r4, 88172645
einit:
	slli r5, r4, 13
	xor  r4, r4, r5
	srli r5, r4, 7
	xor  r4, r4, r5
	slli r5, r4, 17
	xor  r4, r4, r5
	slli r5, r4, 53       ; low 11 bits: column index 0..2047
	srli r5, r5, 53
	sd   r5, 0(r1)
	fcvtif f1, r4
	fsd  f1, 0(r2)
	addi r1, r1, 8
	addi r2, r2, 8
	addi r3, r3, -1
	bnez r3, einit
	la  r1, xvec
	li  r3, 2048
	li  r4, 3
exinit:
	fcvtif f1, r4
	fsd  f1, 0(r1)
	addi r4, r4, 7
	addi r1, r1, 8
	addi r3, r3, -1
	bnez r3, exinit
; ---- SpMV passes: rows of 16 nonzeros ----
	li  r20, 120
epass:
	la  r10, vals
	la  r11, cols
	la  r13, yvec
	li  r12, 128          ; rows
erow:
	li   r14, 16          ; nonzeros per row
	fcvtif f4, r0         ; sum = 0
enz:
	fld  f1, 0(r10)
	ld   r5, 0(r11)
	slli r5, r5, 3
	la   r6, xvec
	add  r6, r6, r5
	fld  f2, 0(r6)        ; gathered load
	fmul f3, f1, f2
	fadd f4, f4, f3
	addi r10, r10, 8
	addi r11, r11, 8
	addi r14, r14, -1
	bnez r14, enz
	fsd  f4, 0(r13)
	addi r13, r13, 8
	addi r12, r12, -1
	bnez r12, erow
	addi r20, r20, -1
	bnez r20, epass
	halt
.data
vals:
	.space 16384
cols:
	.space 16384
xvec:
	.space 16384
yvec:
	.space 8192
`,
	})

	register(&Workload{
		Name:      "turb3d",
		WarmLabel: "tpass",
		Suite:     "SPEC95",
		FP:        true,
		Description: "Turbulence-simulation proxy: a 1D/2D stencil relaxation over a " +
			"64 Ki-point field — each point becomes a weighted sum of itself and four " +
			"neighbours. Wide independent FP work per iteration and fully predictable " +
			"loops: the super-linear clock-scaling case of Figure 12.",
		Source: `
; ---- init field ----
	la  r1, field
	li  r2, 4224
	li  r3, 5
tinit:
	fcvtif f1, r3
	fsd  f1, 0(r1)
	addi r3, r3, 11
	addi r1, r1, 8
	addi r2, r2, -1
	bnez r2, tinit
	la  r1, coef
	fld f20, 0(r1)        ; centre weight
	fld f21, 8(r1)        ; near weight
	fld f22, 16(r1)       ; far weight
; ---- relaxation sweeps ----
	li  r20, 30
tpass:
	la  r10, field
	addi r10, r10, 512    ; skip 64-element halo
	li  r12, 4032         ; interior points
tloop:
	fld  f1, 0(r10)       ; centre
	fld  f2, -8(r10)      ; left
	fld  f3, 8(r10)       ; right
	fld  f4, -512(r10)    ; up (row stride 64)
	fld  f5, 512(r10)     ; down
	fmul f6, f1, f20
	fadd f7, f2, f3
	fmul f7, f7, f21
	fadd f8, f4, f5
	fmul f8, f8, f22
	fadd f6, f6, f7
	fadd f6, f6, f8
	fsd  f6, 0(r10)
	addi r10, r10, 8
	addi r12, r12, -1
	bnez r12, tloop
	addi r20, r20, -1
	bnez r20, tpass
	halt
.data
coef:
	.double 0.6, 0.15, 0.05
field:
	.space 33792
`,
	})
}
