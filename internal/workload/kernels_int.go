package workload

// Integer benchmark proxies. Each kernel first builds a deterministic
// pseudo-random dataset with a xorshift generator (so branch behaviour and
// memory patterns are reproducible), then runs the measured loop.

func init() {
	register(&Workload{
		Name:      "ijpeg",
		WarmLabel: "pass",
		Suite:     "SPEC95",
		Description: "Image-compression proxy: butterfly transforms over 8-word blocks " +
			"of a 32 KiB image. Regular, high-ILP integer arithmetic with perfectly " +
			"predictable loops — like its namesake it lives almost entirely in the " +
			"Execution Cache and benefits from the faster back-end clock.",
		Source: `
; ---- init: fill 32 KiB with xorshift words ----
	la  r1, img
	li  r2, 4096
	li  r3, 88172645
fill:
	slli r4, r3, 13
	xor  r3, r3, r4
	srli r4, r3, 7
	xor  r3, r3, r4
	slli r4, r3, 17
	xor  r3, r3, r4
	sd   r3, 0(r1)
	addi r1, r1, 8
	addi r2, r2, -1
	bnez r2, fill
; ---- transform passes ----
	li  r20, 100
pass:
	la  r1, img
	li  r2, 1024          ; blocks of 4 words
blk:
	ld   r4, 0(r1)
	ld   r5, 8(r1)
	ld   r6, 16(r1)
	ld   r7, 24(r1)
	add  r8, r4, r7
	sub  r9, r4, r7
	add  r10, r5, r6
	sub  r11, r5, r6
	add  r12, r8, r10
	sub  r13, r8, r10
	srai r14, r9, 1
	srai r15, r11, 1
	add  r16, r14, r15
	sub  r17, r14, r15
	sd   r12, 0(r1)
	sd   r13, 8(r1)
	sd   r16, 16(r1)
	sd   r17, 24(r1)
	addi r1, r1, 32
	addi r2, r2, -1
	bnez r2, blk
	addi r20, r20, -1
	bnez r20, pass
	halt
.data
img:
	.space 32768
`,
	})

	register(&Workload{
		Name:      "gcc",
		WarmLabel: "gpass",
		Suite:     "SPEC2000",
		Description: "Compiler proxy: a bytecode-interpreter loop dispatching over a " +
			"pseudo-random opcode stream through a branch ladder, with a side of " +
			"linked-structure updates. Branchy, irregular control flow with moderate " +
			"predictability — traces are shorter and diverge more often than in the " +
			"loop kernels.",
		Source: genGCC(1),
	})

	register(&Workload{
		Name:      "gzip",
		WarmLabel: "zpass",
		Suite:     "SPEC2000",
		Description: "LZ-compression proxy: rolling-hash match search over a 32 KiB " +
			"buffer, with the hash, chain pointer and match length all funnelled " +
			"through the same few destination registers. The concentrated register " +
			"reuse stresses the per-architected-register rename pools — the effect " +
			"behind gzip's drop in the paper's Figure 11.",
		Source: `
; ---- init: 32 KiB of semi-compressible bytes ----
	la  r1, buf
	li  r2, 4096
	li  r3, 362436069
zfill:
	slli r4, r3, 13
	xor  r3, r3, r4
	srli r4, r3, 7
	xor  r3, r3, r4
	slli r4, r3, 17
	xor  r3, r3, r4
	andi r4, r3, 1023
	sd   r4, 0(r1)
	addi r1, r1, 8
	addi r2, r2, -1
	bnez r2, zfill
; ---- hash-match loop: r1..r4 reused hard every iteration ----
	li  r20, 24
zpass:
	la  r10, buf
	la  r11, htab
	li  r12, 4000         ; positions to process
zloop:
	ld   r1, 0(r10)       ; r1 = data word
	slli r2, r1, 3        ; r2 = hash steps, all through r1-r4
	xor  r2, r2, r1
	srli r3, r2, 5
	xor  r2, r2, r3
	andi r2, r2, 2047     ; hash index
	slli r3, r2, 3
	add  r3, r11, r3      ; r3 = &htab[h]
	ld   r4, 0(r3)        ; r4 = previous position
	sd   r10, 0(r3)       ; update chain head
	beqz r4, zmiss
	ld   r2, 0(r4)        ; candidate word
	bne  r2, r1, zmiss
	ld   r2, 8(r4)        ; extend match
	ld   r3, 8(r10)
	bne  r2, r3, zmiss
	addi r21, r21, 1      ; matches found
zmiss:
	addi r10, r10, 8
	addi r12, r12, -1
	bnez r12, zloop
	addi r20, r20, -1
	bnez r20, zpass
	halt
.data
buf:
	.space 32768
htab:
	.space 16384
`,
	})

	register(&Workload{
		Name:      "vpr",
		WarmLabel: "vpass",
		Suite:     "SPEC2000",
		Description: "Place-and-route proxy: simulated-annealing-style cost evaluation " +
			"over a 64x64 grid with data-dependent accept/reject branches and all " +
			"bookkeeping in a handful of registers. Mediocre branch predictability " +
			"plus rename-pool pressure: the combination the paper blames for vpr's " +
			"Figure 11 drop.",
		Source: `
; ---- init grid with xorshift costs ----
	la  r1, grid
	li  r2, 4096
	li  r3, 521288629
vfill:
	slli r4, r3, 13
	xor  r3, r3, r4
	srli r4, r3, 7
	xor  r3, r3, r4
	slli r4, r3, 17
	xor  r3, r3, r4
	andi r4, r3, 255
	sd   r4, 0(r1)
	addi r1, r1, 8
	addi r2, r2, -1
	bnez r2, vfill
; ---- annealing sweeps ----
	li  r20, 30
	li  r9, 88172645      ; rng state
vpass:
	la  r10, grid
	li  r12, 4000
vloop:
	slli r1, r9, 13       ; rng through r1/r2 (register reuse)
	xor  r9, r9, r1
	srli r1, r9, 7
	xor  r9, r9, r1
	slli r1, r9, 17
	xor  r9, r9, r1
	ld   r1, 0(r10)       ; current cost
	ld   r2, 8(r10)       ; neighbour cost
	sub  r3, r1, r2       ; delta (kept: feeds the accept bookkeeping)
	andi r4, r9, 7        ; rng-driven anneal: ~1 in 8 moves accepted
	beqz r4, vaccept      ; data-dependent, effectively unpredictable
	sd   r1, 8(r10)       ; reject: restore
	b    vnext
vaccept:
	sd   r2, 0(r10)       ; accept: swap
	sd   r1, 8(r10)
	addi r21, r21, 1
vnext:
	addi r10, r10, 8
	addi r12, r12, -1
	bnez r12, vloop
	addi r20, r20, -1
	bnez r20, vpass
	halt
.data
grid:
	.space 32768
`,
	})

	register(&Workload{
		Name:      "parser",
		WarmLabel: "p0",
		Suite:     "SPEC2000",
		Description: "Natural-language parser proxy: binary search of pseudo-random " +
			"query keys over a sorted 4096-entry dictionary. Every probe branch is " +
			"data-dependent and effectively unpredictable, and the search state " +
			"recycles the same registers — short traces, frequent divergences and " +
			"rename pressure, matching parser's behaviour in Figures 11-12.",
		Source: genParser(1),
	})

	register(&Workload{
		Name:      "vortex",
		WarmLabel: "tpass",
		Suite:     "SPEC2000",
		Description: "Object-database proxy: a transaction loop that dispatches " +
			"data-dependent *indirect* calls through a method table and walks object " +
			"records through short call-heavy helpers. The varying indirect targets " +
			"defeat the BTB, so the machine keeps falling back to trace creation — " +
			"reproducing vortex's below-60% EC residency and its outsized gain from " +
			"a faster front-end (Figure 12).",
		Source: genVortex(16),
	})

	register(&Workload{
		Name:      "bzip2",
		WarmLabel: "bpass",
		Suite:     "SPEC2000",
		Description: "Block-sort compression proxy: repeated partition passes over a " +
			"64 KiB key array with a data-dependent swap branch near 50% taken — " +
			"close to unpredictable — plus steady load/store traffic, echoing " +
			"bzip2's sorting phase.",
		Source: genBzip2(1),
	})
}
