package synth

import (
	"fmt"
	"math/bits"
	"strings"

	"flywheel/internal/workload"
)

// Register conventions of every generated kernel. Fragments communicate
// only through these, so any fragment composes with any other.
//
//	r2..r7    integer chain accumulators (chain c lives in r2+c)
//	r8..r13   per-chain integer scratch
//	r14       the shared hot destination register (RegReuse sink)
//	r15       most recently loaded value
//	r16       address scratch
//	r17       branch-test scratch
//	r18       runtime xorshift state (random addressing and branch data)
//	r19       arena base pointer
//	r20       outer pass counter
//	r21       inner iteration counter (counts executed bodies)
//	r22       stride cursor (byte offset into the arena)
//	f2..f7    floating-point chain accumulators
//	f14       the loaded value converted to floating point

// WarmLabel marks where initialization ends and the measured phase begins
// in every generated kernel.
const WarmLabel = "measure"

// gen carries the emit state of one generation run.
type gen struct {
	b      strings.Builder
	r      *rng
	p      Profile // defaulted
	maskK  uint    // log2 of the arena size in bytes
	instrs int     // instructions emitted so far (pseudo-expanded)
}

// op emits one instruction line and counts its expanded size.
func (g *gen) op(format string, args ...any) {
	line := fmt.Sprintf(format, args...)
	fmt.Fprintf(&g.b, "\t%s\n", line)
	g.instrs += expandedLen(line)
}

// label emits a label definition.
func (g *gen) label(name string) { fmt.Fprintf(&g.b, "%s:\n", name) }

// expandedLen counts how many machine instructions an assembly line
// occupies, accounting for the multi-instruction pseudos the generator
// uses (la is always 2; li is 2 outside the imm12 range).
func expandedLen(line string) int {
	f := strings.Fields(line)
	switch f[0] {
	case "la":
		return 2
	case "li":
		var v int64
		fmt.Sscanf(f[2], "%d", &v)
		if v < -2048 || v > 2047 {
			return 2
		}
	}
	return 1
}

// Generate emits the assembly text for the profile. Same profile, same
// text: every structural choice comes from the profile's seeded generator.
func Generate(p Profile) (string, error) {
	if err := p.Validate(); err != nil {
		return "", err
	}
	p = p.Defaulted()
	g := &gen{r: newRNG(p.Seed), p: p}
	bytes := p.MemFootprintKB * 1024
	for 1<<g.maskK < bytes {
		g.maskK++
	}

	fmt.Fprintf(&g.b, "; synthetic workload %s (generated, do not edit)\n", p.Name())
	g.genInit()
	g.label(WarmLabel)
	g.genMeasuredLoop()
	fmt.Fprintf(&g.b, ".data\narena:\n\t.space %d\n", bytes)
	return g.b.String(), nil
}

// MustGenerate generates or panics; for tests and static tables.
func MustGenerate(p Profile) string {
	src, err := Generate(p)
	if err != nil {
		panic(err)
	}
	return src
}

// Build wraps the generated kernel as a workload, ready for the registry
// or for direct use with the emulator.
func Build(p Profile) (*workload.Workload, error) {
	src, err := Generate(p)
	if err != nil {
		return nil, err
	}
	d := p.Defaulted()
	desc := fmt.Sprintf("Synthetic kernel: ILP %d, branch entropy %.2f, %d KiB data, "+
		"stride fraction %.2f, FP mix %.2f, register reuse %.2f, %d KiB code, seed %d.",
		d.ILP, d.BranchEntropy, d.MemFootprintKB, d.StrideFrac, d.FPMix,
		d.RegReuse, d.CodeFootprintKB, d.Seed)
	if d.BranchPeriod != 0 || d.ChaseFrac != 0 || d.StrideBytes != 0 {
		desc += fmt.Sprintf(" Frontend stress: branch period %d, chase fraction %.2f, stride %d B.",
			d.BranchPeriod, d.ChaseFrac, d.StrideBytes)
	}
	return &workload.Workload{
		Name:        p.Name(),
		Suite:       "synthetic",
		FP:          d.FPMix > 0,
		Description: desc,
		Source:      src,
		WarmLabel:   WarmLabel,
	}, nil
}

// genInit fills the arena with xorshift words and establishes the register
// conventions. Everything before the warm label is initialization that
// harnesses fast-forward past.
func (g *gen) genInit() {
	words := g.p.MemFootprintKB * 1024 / 8
	fillSeed := int64(g.r.next()&0x0FFF_FFFF | 1)
	runSeed := int64(g.r.next()&0x0FFF_FFFF | 1)

	g.op("la   r16, arena")
	g.op("li   r17, %d", words)
	g.op("li   r18, %d", fillSeed)
	g.label("fill")
	g.op("slli r15, r18, 13")
	g.op("xor  r18, r18, r15")
	g.op("srli r15, r18, 7")
	g.op("xor  r18, r18, r15")
	g.op("slli r15, r18, 17")
	g.op("xor  r18, r18, r15")
	g.op("sd   r18, 0(r16)")
	g.op("addi r16, r16, 8")
	g.op("addi r17, r17, -1")
	g.op("bnez r17, fill")

	g.op("la   r19, arena")
	g.op("li   r22, 0")
	g.op("li   r18, %d", runSeed)
	for c := 0; c < g.p.ILP; c++ {
		g.op("li   r%d, %d", 2+c, 3+2*c)
		g.op("fcvtif f%d, r%d", 2+c, 2+c)
		g.op("li   r%d, %d", 8+c, 1+c)
	}
	g.op("li   r14, 0")
	g.op("li   r15, 0")
}

// genMeasuredLoop emits the pass loop around the unrolled body ring. The
// ring is extended body by body until the static code footprint target is
// met; the inner counter r21 counts executed bodies, so one pass walks the
// ring several times regardless of ring length.
func (g *gen) genMeasuredLoop() {
	target := g.p.CodeFootprintKB * 256 // instructions (4 bytes each)

	g.op("li   r20, %d", g.p.Passes)
	g.label("pass")

	// The iteration count is fixed after the ring is sized, but r21's li
	// must be emitted before the bodies. Generate the bodies into a
	// temporary builder first, counting instructions as we go.
	outer := g.b
	outerInstrs := g.instrs
	g.b = strings.Builder{}
	g.instrs = 0
	var bodies int
	for bodies == 0 || g.instrs < target {
		g.genBody(bodies)
		bodies++
	}
	g.op("b    x0") // wrap the ring; every earlier body falls through
	ring := g.b.String()
	ringInstrs := g.instrs

	iters := innerIterFloor
	if v := bodies * ringIterPerBodies; v > iters {
		iters = v
	}
	g.b = outer
	g.instrs = outerInstrs
	g.op("li   r21, %d", iters)
	g.b.WriteString(ring)
	g.instrs += ringInstrs

	g.label("passend")
	g.op("addi r20, r20, -1")
	g.op("beqz r20, done")
	g.op("b    pass") // long jump: the ring can exceed a branch's reach
	g.label("done")
	g.op("halt")
}

// genBody emits one structurally varied ring body: a memory fragment, a
// compute fragment and a branch fragment, followed by the ring control
// that threads the bodies together. Bodies fall through to their
// successor; genMeasuredLoop wraps the last body back to x0.
func (g *gen) genBody(i int) {
	g.label(fmt.Sprintf("x%d", i))
	g.genMemFragment(i)
	g.genComputeFragment()
	g.genBranchFragment(i)
	// Ring control: one executed body decrements the inner counter. The
	// exit goes through a long jump (J reaches ±2^17 instructions) because
	// a conditional branch to passend would overflow its 12-bit
	// displacement once the ring grows past a few KiB of code.
	g.op("addi r21, r21, -1")
	g.op("bnez r21, z%d", i)
	g.op("b    passend")
	g.label(fmt.Sprintf("z%d", i))
}

// genMemFragment loads a fresh value into r15: pointer-chasing (the next
// address depends on the last loaded value), walking the arena sequentially
// (stride), or addressing it pseudo-randomly; some bodies store a chain
// accumulator back through the same address. The ChaseFrac coin is only
// flipped when the knob is set, so legacy profiles draw the exact same
// random sequence and generate byte-identical programs.
func (g *gen) genMemFragment(i int) {
	if g.p.ChaseFrac > 0 && g.r.coin(g.p.ChaseFrac) {
		// Pointer chase: fold the loaded value and the inner counter into
		// the next address. The counter term keeps the walk from collapsing
		// onto a short cycle of the arena's (fixed) value graph, while the
		// value term makes each load's address depend on the previous
		// load's data — a serial chain with no learnable stride.
		g.op("add  r16, r15, r21")
		g.op("slli r16, r16, %d", 64-(g.maskK-3))
		g.op("srli r16, r16, %d", 64-(g.maskK-3))
		g.op("slli r16, r16, 3")
		g.op("add  r16, r19, r16")
		g.op("ld   r15, 0(r16)")
	} else if g.r.coin(g.p.StrideFrac) {
		// Sequential: advance the cursor and wrap it inside the arena.
		step := 8
		if g.p.StrideBytes > 0 {
			step = g.p.StrideBytes
		}
		g.op("addi r22, r22, %d", step)
		g.op("slli r16, r22, %d", 64-g.maskK)
		g.op("srli r16, r16, %d", 64-g.maskK)
		g.op("add  r16, r19, r16")
		g.op("ld   r15, 0(r16)")
	} else {
		// Random: advance the xorshift state and mask an aligned offset.
		g.op("slli r16, r18, 13")
		g.op("xor  r18, r18, r16")
		g.op("srli r16, r18, 7")
		g.op("xor  r18, r18, r16")
		g.op("slli r16, r18, 17")
		g.op("xor  r18, r18, r16")
		g.op("slli r16, r18, %d", 64-(g.maskK-3))
		g.op("srli r16, r16, %d", 64-(g.maskK-3))
		g.op("slli r16, r16, 3")
		g.op("add  r16, r19, r16")
		g.op("ld   r15, 0(r16)")
	}
	if i%3 == 2 {
		// Every third body writes a chain accumulator back, keeping
		// stores in the mix and the arena churning.
		g.op("sd   r%d, 0(r16)", 2+g.r.intn(g.p.ILP))
	}
}

// genComputeFragment emits the dependency-chain arithmetic: a fixed total
// of chainOpsPerBlock operations split across the profile's ILP chains
// (the remainder going to the first chains, so the total is identical at
// every ILP). Low ILP concentrates the ops into few long serial chains;
// high ILP spreads them across many short independent ones — same work,
// different critical path. Each chain is integer or floating-point per
// FPMix, and each operation funnels an extra write into the hot register
// r14 with probability RegReuse.
func (g *gen) genComputeFragment() {
	base, rem := chainOpsPerBlock/g.p.ILP, chainOpsPerBlock%g.p.ILP
	fpConverted := false
	for c := 0; c < g.p.ILP; c++ {
		perChain := base
		if c < rem {
			perChain++
		}
		if g.r.coin(g.p.FPMix) {
			if !fpConverted {
				g.op("fcvtif f14, r15")
				fpConverted = true
			}
			for k := 0; k < perChain; k++ {
				switch g.r.intn(3) {
				case 0:
					g.op("fadd f%d, f%d, f14", 2+c, 2+c)
				case 1:
					g.op("fsub f%d, f%d, f14", 2+c, 2+c)
				default:
					g.op("fmul f%d, f%d, f14", 2+c, 2+c)
				}
				g.genReuseSink(c)
			}
			continue
		}
		for k := 0; k < perChain; k++ {
			switch g.r.intn(4) {
			case 0:
				g.op("add  r%d, r%d, r15", 2+c, 2+c)
			case 1:
				g.op("xor  r%d, r%d, r15", 2+c, 2+c)
			case 2:
				g.op("sub  r%d, r%d, r15", 2+c, 2+c)
			default:
				g.op("addi r%d, r%d, %d", 2+c, 2+c, 1+g.r.intn(64))
			}
			g.genReuseSink(c)
		}
	}
}

// genReuseSink funnels an independent result into the shared hot register
// with probability RegReuse. The write is never read back on the chain, so
// it adds rename-pool pressure on one architected register without adding
// dependencies.
func (g *gen) genReuseSink(c int) {
	if g.r.coin(g.p.RegReuse) {
		g.op("addi r14, r%d, %d", 8+c, 1+c)
	}
}

// genBranchFragment emits the body's conditional branch. A random-type
// branch (probability BranchEntropy) tests a bit of the freshly loaded
// pseudo-random value — an unlearnable 50/50 direction. A predictable-type
// branch tests a bit of the inner counter, so its direction flips once
// every BranchPeriod executed bodies (512 by default) — learnable by any
// predictor whose history reaches back one run length, opaque to one whose
// history is shorter. Both skip a short filler sequence, so taken and
// not-taken paths differ.
func (g *gen) genBranchFragment(i int) {
	if g.r.coin(g.p.BranchEntropy) {
		g.op("andi r17, r15, %d", 1<<g.r.intn(3))
		g.op("bnez r17, y%d", i)
	} else {
		bit := 9
		if g.p.BranchPeriod > 0 {
			bit = bits.Len(uint(g.p.BranchPeriod)) - 1
		}
		g.op("srli r17, r21, %d", bit)
		g.op("andi r17, r17, 1")
		g.op("bnez r17, y%d", i)
	}
	for k, n := 0, 1+g.r.intn(3); k < n; k++ {
		g.op("xor  r17, r17, r%d", 8+g.r.intn(g.p.ILP))
	}
	g.label(fmt.Sprintf("y%d", i))
}
