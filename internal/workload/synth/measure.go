package synth

import (
	"fmt"

	"flywheel/internal/isa"
)

// Characteristics reports what a generated kernel actually does on the
// functional emulator, measured from the warm label. The package tests
// hold Generate's output to the targets the Profile asked for; callers can
// use it to audit a profile before spending timing-simulation budget on it.
type Characteristics struct {
	// Retired is the number of measured instructions.
	Retired uint64

	// Instruction mix, as fractions of Retired.
	FPFrac     float64 // floating-point classes (add/mul/div)
	LoadFrac   float64
	StoreFrac  float64
	BranchFrac float64 // conditional branches

	// Branch behaviour.
	TakenRate    float64 // taken fraction of conditional branches
	CondFlipRate float64 // per-PC direction-change rate: ~0 when every
	// branch repeats its last direction, ~0.5 for 50/50 random directions

	// Footprints.
	DataFootprintBytes uint64 // span of data addresses touched
	CodeFootprintBytes uint64 // distinct instruction words executed × 4

	// TopDestShare is the hottest destination register's share of all
	// register writes — the register-reuse concentration.
	TopDestShare float64

	// StrideRepeatFrac is the fraction of loads whose address delta (to the
	// same PC's previous load) repeats that PC's previous delta — exactly
	// the pattern a PC-indexed delta prefetcher learns. ~1 for a constant
	// stride walk, ~0 for pointer chasing or random addressing.
	StrideRepeatFrac float64
}

// Measure generates the profile's kernel, fast-forwards the emulator past
// initialization and executes up to limit measured instructions (0 uses a
// default budget), reporting the observed characteristics.
func Measure(p Profile, limit uint64) (Characteristics, error) {
	w, err := Build(p)
	if err != nil {
		return Characteristics{}, err
	}
	if limit == 0 {
		limit = 200_000
	}
	m, err := w.NewMachine()
	if err != nil {
		return Characteristics{}, err
	}

	var c Characteristics
	var conds, taken, flips uint64
	var loads, strideRepeats uint64
	type loadHist struct {
		addr  uint64
		delta int64
		seen  bool
	}
	lastLoad := map[uint64]loadHist{}
	lastDir := map[uint64]bool{}
	dests := map[isa.Reg]uint64{}
	var writes uint64
	var minAddr, maxAddr uint64
	pcs := map[uint64]struct{}{}

	for !m.Halted && c.Retired < limit {
		tr, err := m.Step()
		if err != nil {
			return Characteristics{}, fmt.Errorf("synth: measure %s: %w", p.Name(), err)
		}
		c.Retired++
		pcs[tr.PC] = struct{}{}
		in := tr.Inst
		switch in.Class() {
		case isa.ClassFPAdd, isa.ClassFPMul, isa.ClassFPDiv:
			c.FPFrac++
		case isa.ClassLoad:
			c.LoadFrac++
			loads++
			h := lastLoad[tr.PC]
			if h.seen {
				d := int64(tr.Addr) - int64(h.addr)
				if d != 0 && d == h.delta {
					strideRepeats++
				}
				h.delta = d
			}
			h.addr, h.seen = tr.Addr, true
			lastLoad[tr.PC] = h
		case isa.ClassStore:
			c.StoreFrac++
		case isa.ClassBranch:
			c.BranchFrac++
			conds++
			if tr.Taken {
				taken++
			}
			if last, seen := lastDir[tr.PC]; seen && last != tr.Taken {
				flips++
			}
			lastDir[tr.PC] = tr.Taken
		}
		if in.IsMem() {
			if minAddr == 0 || tr.Addr < minAddr {
				minAddr = tr.Addr
			}
			if tr.Addr > maxAddr {
				maxAddr = tr.Addr
			}
		}
		if in.HasDest() {
			dests[in.Rd]++
			writes++
		}
	}

	if c.Retired > 0 {
		n := float64(c.Retired)
		c.FPFrac /= n
		c.LoadFrac /= n
		c.StoreFrac /= n
		c.BranchFrac /= n
	}
	if conds > 0 {
		c.TakenRate = float64(taken) / float64(conds)
		c.CondFlipRate = float64(flips) / float64(conds)
	}
	if loads > 0 {
		c.StrideRepeatFrac = float64(strideRepeats) / float64(loads)
	}
	if maxAddr >= minAddr && minAddr != 0 {
		c.DataFootprintBytes = maxAddr - minAddr + 8
	}
	c.CodeFootprintBytes = uint64(len(pcs)) * isa.InstBytes
	if writes > 0 {
		var top uint64
		for _, n := range dests {
			if n > top {
				top = n
			}
		}
		c.TopDestShare = float64(top) / float64(writes)
	}
	return c, nil
}
