package synth

// Frontend stress profiles. Each one isolates a behavior that separates
// the pluggable frontend components: a long-history branch predictor only
// pays off when short histories cannot express the pattern, and a delta
// prefetcher only pays off when demand misses follow a learnable stride.
// The explorer sweeps these alongside the legacy profiles to show *where*
// each frontend choice earns its area.

// PointerChase is a serial dependent-load walk over a large arena: each
// load's address folds in the previous load's value, so the memory system
// sees back-to-back misses with no learnable stride. Delta prefetching
// should find nothing here; it is the profile's negative control.
func PointerChase(seed uint64) Profile {
	return Profile{
		ILP:             2,
		MemFootprintKB:  256,
		ChaseFrac:       0.9,
		CodeFootprintKB: 2,
		Seed:            seed,
		Passes:          2,
	}
}

// HighEntropyBranch flips its predictable branches every 16 executed
// bodies. The run length is far past what a G-share history register
// resolves, so the pattern reads as near-random noise to it — while a
// geometric-history predictor (TAGE) sees the position inside the run and
// locks on. No true entropy is mixed in: every mispredict is a frontend
// failure, not an unlearnable coin flip.
func HighEntropyBranch(seed uint64) Profile {
	return Profile{
		ILP:             4,
		BranchPeriod:    16,
		MemFootprintKB:  8,
		StrideFrac:      1,
		CodeFootprintKB: 1,
		Seed:            seed,
		Passes:          2,
	}
}

// LongStrideFP walks a cache-busting arena at a 256-byte stride with a
// floating-point-heavy compute mix: every access opens a fresh line, so
// demand misses follow a constant per-PC delta that a stride prefetcher
// can run ahead of. The FP latency shadow keeps the core busy enough that
// prefetch timeliness, not bandwidth, decides the win.
func LongStrideFP(seed uint64) Profile {
	return Profile{
		ILP:             4,
		MemFootprintKB:  512,
		StrideFrac:      1,
		StrideBytes:     256,
		FPMix:           0.8,
		CodeFootprintKB: 2,
		Seed:            seed,
		Passes:          2,
	}
}

// StressProfiles returns the three frontend stress profiles at the given
// seed, in a stable order, for sweeps and tests.
func StressProfiles(seed uint64) []Profile {
	return []Profile{PointerChase(seed), HighEntropyBranch(seed), LongStrideFP(seed)}
}
