// Package synth generates parameterized synthetic workloads for the
// flywheel ISA. The hand-written benchmark proxies in package workload pin
// each namesake's characteristics by construction; synth inverts that: a
// Profile names the characteristics directly — instruction-level
// parallelism, branch predictability, memory footprint and access pattern,
// floating-point mix, destination-register reuse and static code footprint
// — and a deterministic, seeded generator emits an assembly kernel that
// exhibits them. That turns the reproduction from "how does the Flywheel do
// on these ten programs?" into "for *which* programs does a multiple-speed
// pipeline win?", the question the design-space explorer (package explore)
// sweeps.
//
// Generation is pure: the same Profile always yields byte-identical
// assembly, so a profile's canonical Name doubles as its cache identity in
// the lab's memoized run cache. Measure replays a generated kernel on the
// functional emulator and reports the characteristics it actually
// exhibits; the package tests hold Generate to those targets.
package synth

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"
)

// Profile parameterizes one synthetic workload. The zero value of each
// integer knob selects its default; the float knobs are fractions in [0, 1]
// whose zero value is meaningful (e.g. BranchEntropy 0 = fully predictable
// branches). See DESIGN.md for how each knob maps to the workload
// characteristics that drive the paper's experiments.
type Profile struct {
	// ILP is the number of independent dependency chains threaded through
	// the kernel's compute blocks (1..6; default 4). The total arithmetic
	// work per block is fixed, so low ILP means few long chains (serial)
	// and high ILP means many short ones (parallel).
	ILP int
	// BranchEntropy in [0, 1] is the fraction of the kernel's conditional
	// branches whose direction depends on pseudo-random data (unlearnable),
	// rather than on slowly-varying loop state (learnable).
	BranchEntropy float64
	// MemFootprintKB is the data working set in KiB (1..1024; default 32),
	// rounded up to a power of two so addresses can be masked.
	MemFootprintKB int
	// StrideFrac in [0, 1] is the fraction of memory accesses that walk the
	// working set sequentially; the rest address it pseudo-randomly.
	StrideFrac float64
	// FPMix in [0, 1] is the fraction of dependency-chain arithmetic done
	// in floating point rather than integer.
	FPMix float64
	// RegReuse in [0, 1] concentrates destination-register writes: it is
	// the probability that a chain operation also funnels a result into the
	// single shared hot register, stressing that architected register's
	// rename pool (the gzip/vpr/parser effect of the paper's Figure 11).
	RegReuse float64
	// CodeFootprintKB is the static code footprint in KiB (1..256;
	// default 4): the measured loop is unrolled into structurally varied
	// bodies until the target size is reached, so stored traces compete for
	// Execution Cache capacity like the namesake benchmarks' large text
	// sections do.
	CodeFootprintKB int
	// BranchPeriod, when nonzero, replaces the predictable branches' default
	// direction pattern (flip every 512 bodies) with a flip every
	// BranchPeriod executed bodies (power of two, 2..4096). Short periods
	// look random to a short-history predictor — the run length exceeds what
	// a G-share history register can count — while a long-geometric-history
	// predictor (TAGE) locks onto the position inside the run.
	BranchPeriod int
	// ChaseFrac in [0, 1] is the fraction of memory fragments that
	// pointer-chase: the next load address is derived from the previously
	// loaded value, so the loads form a serial dependence chain with no
	// learnable stride.
	ChaseFrac float64
	// StrideBytes, when nonzero, overrides the sequential cursor's step
	// (power of two, 8..1024; default 8). Steps past the line size turn the
	// sequential walk into a long-stride pattern: every access opens a new
	// line, which a delta prefetcher can run ahead of.
	StrideBytes int
	// Seed selects the generator's pseudo-random structure decisions and
	// the kernel's runtime data. Same seed, same program.
	Seed uint64
	// Passes is the number of measured outer passes (1..64; default 4); it
	// scales the dynamic instruction count of a run to completion.
	Passes int
}

// Profile knob bounds and defaults.
const (
	DefaultILP        = 4
	MaxILP            = 6
	DefaultMemKB      = 32
	MaxMemKB          = 1024
	DefaultCodeKB     = 4
	MaxCodeKB         = 256
	DefaultPasses     = 4
	MaxPasses         = 64
	MaxBranchPeriod   = 4096 // BranchPeriod upper bound (0 = legacy 512)
	MaxStrideBytes    = 1024 // StrideBytes upper bound (0 = default 8)
	innerIterFloor    = 1024 // minimum bodies executed per pass
	chainOpsPerBlock  = 12   // arithmetic ops per compute block, split across chains
	ringIterPerBodies = 4    // passes over the whole body ring per inner loop
)

// Defaulted returns p with every zero integer knob replaced by its default
// and the memory footprint rounded up to a power of two. It does not
// validate; see Validate.
func (p Profile) Defaulted() Profile {
	if p.ILP == 0 {
		p.ILP = DefaultILP
	}
	if p.MemFootprintKB == 0 {
		p.MemFootprintKB = DefaultMemKB
	}
	if p.MemFootprintKB > 0 {
		p.MemFootprintKB = ceilPow2(p.MemFootprintKB)
	}
	if p.CodeFootprintKB == 0 {
		p.CodeFootprintKB = DefaultCodeKB
	}
	if p.Passes == 0 {
		p.Passes = DefaultPasses
	}
	if p.BranchPeriod > 0 {
		p.BranchPeriod = ceilPow2(p.BranchPeriod)
	}
	if p.StrideBytes > 0 {
		p.StrideBytes = ceilPow2(p.StrideBytes)
	}
	return p
}

func ceilPow2(v int) int {
	if v <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(v-1))
}

// Validate checks the defaulted profile's knobs against their ranges.
func (p Profile) Validate() error {
	d := p.Defaulted()
	check := func(name string, v, lo, hi int) error {
		if v < lo || v > hi {
			return fmt.Errorf("synth: %s %d outside [%d, %d]", name, v, lo, hi)
		}
		return nil
	}
	frac := func(name string, v float64) error {
		if v < 0 || v > 1 {
			return fmt.Errorf("synth: %s %g outside [0, 1]", name, v)
		}
		return nil
	}
	if err := check("ILP", d.ILP, 1, MaxILP); err != nil {
		return err
	}
	if err := check("MemFootprintKB", d.MemFootprintKB, 1, MaxMemKB); err != nil {
		return err
	}
	if err := check("CodeFootprintKB", d.CodeFootprintKB, 1, MaxCodeKB); err != nil {
		return err
	}
	if err := check("Passes", d.Passes, 1, MaxPasses); err != nil {
		return err
	}
	if err := frac("BranchEntropy", d.BranchEntropy); err != nil {
		return err
	}
	if err := frac("StrideFrac", d.StrideFrac); err != nil {
		return err
	}
	if err := frac("FPMix", d.FPMix); err != nil {
		return err
	}
	if err := frac("ChaseFrac", d.ChaseFrac); err != nil {
		return err
	}
	if d.BranchPeriod != 0 {
		if err := check("BranchPeriod", d.BranchPeriod, 2, MaxBranchPeriod); err != nil {
			return err
		}
	}
	if d.StrideBytes != 0 {
		if err := check("StrideBytes", d.StrideBytes, 8, MaxStrideBytes); err != nil {
			return err
		}
	}
	return frac("RegReuse", d.RegReuse)
}

// Name is the canonical identity of the defaulted profile. Two profiles
// that default to the same knobs share a name (and therefore one lab cache
// entry); profiles that differ in any knob never collide — the name spells
// out every knob exactly.
func (p Profile) Name() string {
	d := p.Defaulted()
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	name := fmt.Sprintf("synth/i%d-e%s-m%d-s%s-f%s-r%s-c%d-p%d-x%d",
		d.ILP, g(d.BranchEntropy), d.MemFootprintKB, g(d.StrideFrac),
		g(d.FPMix), g(d.RegReuse), d.CodeFootprintKB, d.Passes, d.Seed)
	// The frontend-stress knobs appear only when set, so every profile that
	// predates them keeps its name (and its cache identity).
	if d.BranchPeriod != 0 {
		name += fmt.Sprintf("-bp%d", d.BranchPeriod)
	}
	if d.ChaseFrac != 0 {
		name += "-h" + g(d.ChaseFrac)
	}
	if d.StrideBytes != 0 {
		name += fmt.Sprintf("-sb%d", d.StrideBytes)
	}
	return name
}

// String describes the profile for human-facing tables.
func (p Profile) String() string { return strings.TrimPrefix(p.Name(), "synth/") }

// rng is a splitmix64 generator: the deterministic source of every
// structural decision the generator makes. It must not be replaced by
// math/rand — the emitted program text is part of the cache identity.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng {
	// Mix the seed so 0 and 1 produce unrelated streams.
	r := &rng{state: seed + 0x9E3779B97F4A7C15}
	r.next()
	return r
}

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float returns a uniform value in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// intn returns a uniform value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// coin reports true with probability p.
func (r *rng) coin(p float64) bool { return r.float() < p }
