package synth_test

import (
	"strings"
	"testing"

	"flywheel/internal/asm"
	"flywheel/internal/emu"
	"flywheel/internal/sim"
	"flywheel/internal/workload"
	"flywheel/internal/workload/synth"
)

// measure is the shared measurement helper at the test budget.
func measure(t *testing.T, p synth.Profile) synth.Characteristics {
	t.Helper()
	c, err := synth.Measure(p, 60_000)
	if err != nil {
		t.Fatal(err)
	}
	if c.Retired == 0 {
		t.Fatalf("%s: no measured instructions", p.Name())
	}
	return c
}

func TestGenerateIsDeterministic(t *testing.T) {
	p := synth.Profile{ILP: 3, BranchEntropy: 0.5, FPMix: 0.25, Seed: 42}
	a := synth.MustGenerate(p)
	b := synth.MustGenerate(p)
	if a != b {
		t.Error("same profile generated different programs")
	}
	c := synth.MustGenerate(synth.Profile{ILP: 3, BranchEntropy: 0.5, FPMix: 0.25, Seed: 43})
	if a == c {
		t.Error("different seeds generated identical programs")
	}
}

func TestNameCanonicalizesDefaults(t *testing.T) {
	zero := synth.Profile{}
	explicit := synth.Profile{
		ILP: synth.DefaultILP, MemFootprintKB: synth.DefaultMemKB,
		CodeFootprintKB: synth.DefaultCodeKB, Passes: synth.DefaultPasses,
	}
	if zero.Name() != explicit.Name() {
		t.Errorf("zero profile name %q != explicit defaults %q", zero.Name(), explicit.Name())
	}
	rounded := synth.Profile{MemFootprintKB: 33}
	if rounded.Name() != (synth.Profile{MemFootprintKB: 64}).Name() {
		t.Errorf("footprint not rounded to power of two: %q", rounded.Name())
	}
}

func TestNamesNeverCollide(t *testing.T) {
	var profiles []synth.Profile
	for _, ilp := range []int{1, 2, 4, 6} {
		for _, e := range []float64{0, 0.3, 1} {
			for _, fp := range []float64{0, 0.5} {
				for _, seed := range []uint64{0, 1, 99} {
					profiles = append(profiles, synth.Profile{
						ILP: ilp, BranchEntropy: e, FPMix: fp, Seed: seed,
					})
				}
			}
		}
	}
	seen := map[string]synth.Profile{}
	for _, p := range profiles {
		name := p.Name()
		if prev, dup := seen[name]; dup {
			t.Fatalf("profiles %+v and %+v share name %q", prev, p, name)
		}
		seen[name] = p
	}
}

func TestValidateRejectsOutOfRange(t *testing.T) {
	bad := []synth.Profile{
		{ILP: synth.MaxILP + 1},
		{ILP: -1},
		{BranchEntropy: 1.5},
		{StrideFrac: -0.1},
		{FPMix: 2},
		{RegReuse: -1},
		{MemFootprintKB: synth.MaxMemKB + 1},
		{MemFootprintKB: -64},
		{CodeFootprintKB: -3},
		{Passes: -1},
		{CodeFootprintKB: synth.MaxCodeKB + 1},
		{Passes: synth.MaxPasses + 1},
	}
	for _, p := range bad {
		if _, err := synth.Generate(p); err == nil {
			t.Errorf("profile %+v: expected validation error", p)
		}
	}
}

// TestFPMixTarget: the floating-point fraction of the dynamic mix tracks
// the FPMix knob — zero at 0 and monotonically increasing.
func TestFPMixTarget(t *testing.T) {
	small := synth.Profile{MemFootprintKB: 4, CodeFootprintKB: 2, Passes: 1}
	none, low, high := small, small, small
	low.FPMix, high.FPMix = 0.25, 0.9
	cNone, cLow, cHigh := measure(t, none), measure(t, low), measure(t, high)
	if cNone.FPFrac != 0 {
		t.Errorf("FPMix 0: measured FP fraction %.3f, want 0", cNone.FPFrac)
	}
	if cLow.FPFrac <= 0 {
		t.Errorf("FPMix 0.25: measured FP fraction %.3f, want > 0", cLow.FPFrac)
	}
	if cHigh.FPFrac <= cLow.FPFrac {
		t.Errorf("FP fraction not monotonic: FPMix 0.9 -> %.3f <= FPMix 0.25 -> %.3f",
			cHigh.FPFrac, cLow.FPFrac)
	}
}

// TestBranchEntropyTarget: predictable profiles repeat per-PC branch
// directions (low flip rate); full-entropy profiles flip like coin tosses.
func TestBranchEntropyTarget(t *testing.T) {
	small := synth.Profile{MemFootprintKB: 4, CodeFootprintKB: 2, Passes: 1}
	pred, rnd := small, small
	rnd.BranchEntropy = 1
	cPred, cRnd := measure(t, pred), measure(t, rnd)
	if cPred.CondFlipRate > 0.05 {
		t.Errorf("entropy 0: flip rate %.3f, want <= 0.05", cPred.CondFlipRate)
	}
	// Each body executes one data-dependent branch (flip rate ~0.5) and one
	// predictable ring-control branch, so the aggregate sits near 0.25.
	if cRnd.CondFlipRate < 0.2 {
		t.Errorf("entropy 1: flip rate %.3f, want >= 0.2", cRnd.CondFlipRate)
	}
	if cPred.BranchFrac == 0 || cRnd.BranchFrac == 0 {
		t.Error("kernels lost their conditional branches")
	}
}

// TestMemFootprintTarget: the span of touched data addresses tracks the
// footprint knob (random addressing covers the arena quickly).
func TestMemFootprintTarget(t *testing.T) {
	for _, kb := range []int{4, 16} {
		p := synth.Profile{MemFootprintKB: kb, CodeFootprintKB: 2, Passes: 1}
		c := measure(t, p)
		want := uint64(kb * 1024)
		if c.DataFootprintBytes < want/2 || c.DataFootprintBytes > want {
			t.Errorf("footprint %dKB: touched span %d bytes, want in [%d, %d]",
				kb, c.DataFootprintBytes, want/2, want)
		}
	}
}

// TestCodeFootprintTarget: the static code size tracks the knob within the
// generator's body-granularity tolerance, and the measured loop actually
// executes it all.
func TestCodeFootprintTarget(t *testing.T) {
	for _, kb := range []int{2, 8} {
		p := synth.Profile{MemFootprintKB: 4, CodeFootprintKB: kb, Passes: 1}
		src := synth.MustGenerate(p)
		prog, err := asm.Assemble(p.Name()+".s", src)
		if err != nil {
			t.Fatal(err)
		}
		target := kb * 256 // instructions
		if got := len(prog.Code); got < target || got > target+target/2 {
			t.Errorf("code %dKB: %d instructions, want in [%d, %d]", kb, got, target, target+target/2)
		}
		c := measure(t, p)
		if c.CodeFootprintBytes < uint64(target*4)/2 {
			t.Errorf("code %dKB: only %d bytes executed of %d generated",
				kb, c.CodeFootprintBytes, target*4)
		}
	}
}

// TestRegReuseTarget: concentrating destination writes raises the hottest
// register's share of all writes.
func TestRegReuseTarget(t *testing.T) {
	small := synth.Profile{MemFootprintKB: 4, CodeFootprintKB: 2, Passes: 1}
	spread, hot := small, small
	hot.RegReuse = 0.9
	cSpread, cHot := measure(t, spread), measure(t, hot)
	if cHot.TopDestShare <= cSpread.TopDestShare {
		t.Errorf("reuse 0.9 top-dest share %.3f <= reuse 0 share %.3f",
			cHot.TopDestShare, cSpread.TopDestShare)
	}
	if cHot.TopDestShare < 0.25 {
		t.Errorf("reuse 0.9 top-dest share %.3f, want >= 0.25", cHot.TopDestShare)
	}
}

// TestStrideVsRandomMix: stride-1 kernels touch memory sequentially, so
// consecutive loads land 8 bytes apart far more often than random ones.
func TestStrideVsRandomMix(t *testing.T) {
	seqShare := func(p synth.Profile) float64 {
		w, err := synth.Build(p)
		if err != nil {
			t.Fatal(err)
		}
		m, err := w.NewMachine()
		if err != nil {
			t.Fatal(err)
		}
		var last uint64
		var loads, seq int
		for i := 0; i < 40_000 && !m.Halted; i++ {
			tr, err := m.Step()
			if err != nil {
				t.Fatal(err)
			}
			if tr.Inst.Class().String() == "load" {
				if last != 0 && tr.Addr-last == 8 {
					seq++
				}
				last = tr.Addr
				loads++
			}
		}
		if loads == 0 {
			t.Fatalf("%s: no loads", p.Name())
		}
		return float64(seq) / float64(loads)
	}
	base := synth.Profile{MemFootprintKB: 4, CodeFootprintKB: 2, Passes: 1}
	strided := base
	strided.StrideFrac = 1
	if s, r := seqShare(strided), seqShare(base); s < 0.9 || r > 0.3 {
		t.Errorf("sequential-load share: stride=1 %.3f (want >= 0.9), stride=0 %.3f (want <= 0.3)", s, r)
	}
}

// TestILPTarget: with the per-block arithmetic budget fixed, spreading it
// over more independent chains must raise baseline IPC.
func TestILPTarget(t *testing.T) {
	ipc := func(ilp int) float64 {
		p := synth.Profile{ILP: ilp, MemFootprintKB: 4, CodeFootprintKB: 2, Passes: 4, Seed: 5}
		w, err := synth.Build(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := workload.Register(w); err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(sim.RunConfig{Workload: p.Name(), Arch: sim.ArchBaseline, MaxInstructions: 20_000})
		if err != nil {
			t.Fatal(err)
		}
		return res.IPC
	}
	serial, parallel := ipc(1), ipc(6)
	if parallel <= serial {
		t.Errorf("baseline IPC: ILP 6 -> %.3f <= ILP 1 -> %.3f", parallel, serial)
	}
}

// TestBuildRegistersCleanly: Build's workload integrates with the registry
// and is idempotent under re-registration.
func TestBuildRegistersCleanly(t *testing.T) {
	p := synth.Profile{MemFootprintKB: 4, CodeFootprintKB: 1, Passes: 1, Seed: 11}
	w, err := synth.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(w.Name, "synth/") {
		t.Errorf("workload name %q lacks synth/ prefix", w.Name)
	}
	if err := workload.Register(w); err != nil {
		t.Fatal(err)
	}
	again, err := synth.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.Register(again); err != nil {
		t.Errorf("idempotent re-registration failed: %v", err)
	}
	got, err := workload.Get(p.Name())
	if err != nil {
		t.Fatal(err)
	}
	if got.WarmAddr() == 0 {
		t.Error("registered synthetic workload has no warm point")
	}
	m := emu.New(got.Program())
	if _, err := m.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if !m.Halted {
		t.Error("synthetic workload did not halt")
	}
}
