// Package workload provides the benchmark-proxy kernels used by the
// experiment harness. The paper evaluates SPEC95/SPEC2000 binaries; those
// are not available here (and the ISA differs), so each benchmark named in
// the paper's figures is replaced by a hand-written assembly kernel that
// reproduces the *characteristics* that drive the paper's experiments:
//
//   - branch predictability (it determines trace divergences and therefore
//     EC residency and mispredict penalties),
//   - instruction-level parallelism (it determines issue-unit width and the
//     benefit of a faster front-end filling the window),
//   - memory footprint and access pattern (cache hit rates),
//   - integer/floating-point mix (functional-unit pressure),
//   - destination-register reuse (pressure on the per-architected-register
//     rename pools — the gzip/vpr/parser effect of Figure 11).
//
// See DESIGN.md ("Substitutions") for the fidelity argument. The mapping
// from kernel to namesake is documented per workload below.
package workload

import (
	"fmt"
	"sort"
	"sync"

	"flywheel/internal/asm"
	"flywheel/internal/emu"
	"flywheel/internal/pipe"
)

// WarmUpLimit caps how many instructions a workload's initialization phase
// may execute during the warm fast-forward.
const WarmUpLimit = 50_000_000

// Workload is one runnable benchmark proxy.
type Workload struct {
	// Name matches the benchmark label used in the paper's figures.
	Name string
	// Suite is "SPEC95" or "SPEC2000" (as in the paper's benchmark list).
	Suite string
	// FP reports a floating-point-dominated kernel.
	FP bool
	// Description explains what the kernel does and which property of the
	// namesake benchmark it reproduces.
	Description string
	// Source is the assembly text (assembled lazily, cached).
	Source string
	// WarmLabel names the label where initialization ends and the measured
	// phase begins; harnesses fast-forward the functional machine to it
	// before attaching a timing core (the paper fast-forwards 500M
	// instructions before measuring).
	WarmLabel string

	once sync.Once
	prog *asm.Program

	// Warm-snapshot cache: the fast-forward to the warm point executes
	// once per process; later WarmState/NewMachine calls reuse the frozen
	// state (cloned copy-on-write) and the recorded warm observations.
	warmOnce sync.Once
	warmSnap *emu.Snapshot
	warmLog  *pipe.WarmLog
	warmErr  error
}

// WarmAddr returns the address of the measurement-phase entry, or 0 when
// the kernel has no initialization to skip.
func (w *Workload) WarmAddr() uint64 {
	if w.WarmLabel == "" {
		return 0
	}
	addr, ok := w.Program().Symbols[w.WarmLabel]
	if !ok {
		panic(fmt.Sprintf("workload %s: warm label %q not defined", w.Name, w.WarmLabel))
	}
	return addr
}

// WarmState executes the initialization phase once per process and returns
// the frozen architectural state at the warm point plus the recorded warm
// observations. The log is nil when initialization was too long to record
// (pipe.MaxWarmLogRecords); callers then fall back to functional
// re-execution for warming. The snapshot is shared: clone it (NewMachine)
// rather than mutating it.
func (w *Workload) WarmState() (*emu.Snapshot, *pipe.WarmLog, error) {
	w.warmOnce.Do(func() {
		m := emu.New(w.Program())
		log := &pipe.WarmLog{}
		if addr := w.WarmAddr(); addr != 0 {
			for m.PC != addr && !m.Halted && m.Retired < WarmUpLimit {
				tr, err := m.Step()
				if err != nil {
					w.warmErr = fmt.Errorf("workload %s: warm-up: %w", w.Name, err)
					return
				}
				log.Observe(tr)
			}
		}
		w.warmSnap = m.Snapshot()
		if !log.Overflowed() {
			w.warmLog = log
		}
	})
	return w.warmSnap, w.warmLog, w.warmErr
}

// NewMachine builds a functional machine fast-forwarded to the warm point.
// The fast-forward runs once per workload (WarmState); subsequent calls
// clone the frozen state through copy-on-write memory, so per-call cost is
// O(1) in the initialization length. Clones are independent and may run
// concurrently.
func (w *Workload) NewMachine() (*emu.Machine, error) {
	snap, _, err := w.WarmState()
	if err != nil {
		return nil, err
	}
	return snap.NewMachine(), nil
}

// Program assembles the kernel (cached, safe for concurrent use — lab
// workers share one Workload across parallel runs).
func (w *Workload) Program() *asm.Program {
	w.once.Do(func() {
		w.prog = asm.MustAssemble(w.Name+".s", w.Source)
	})
	return w.prog
}

var (
	registryMu sync.RWMutex
	registry   = map[string]*Workload{}
)

func register(w *Workload) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[w.Name]; dup {
		panic(fmt.Sprintf("workload: duplicate %q", w.Name))
	}
	registry[w.Name] = w
}

// Register adds a runtime-constructed workload (e.g. a synthetic kernel)
// to the registry, making it addressable by name through the simulator and
// the lab's memoized cache. Re-registering a name with identical source is
// a no-op, so idempotent callers need no coordination; a name collision
// with different source is an error.
func Register(w *Workload) error {
	registryMu.Lock()
	defer registryMu.Unlock()
	if prev, ok := registry[w.Name]; ok {
		if prev.Source != w.Source {
			return fmt.Errorf("workload: %q already registered with different source", w.Name)
		}
		return nil
	}
	registry[w.Name] = w
	return nil
}

// Get returns a workload by name.
func Get(name string) (*Workload, error) {
	registryMu.RLock()
	w, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("workload: unknown benchmark %q (have %v)", name, Names())
	}
	return w, nil
}

// MustGet returns a workload or panics.
func MustGet(name string) *Workload {
	w, err := Get(name)
	if err != nil {
		panic(err)
	}
	return w
}

// Names lists all workloads in the paper's figure order.
func Names() []string {
	// Order used on the x-axis of Figures 2 and 11-15.
	return []string{"ijpeg", "gcc", "gzip", "vpr", "mesa", "equake", "parser", "vortex", "bzip2", "turb3d"}
}

// All returns the paper's workloads in figure order.
func All() []*Workload {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]*Workload, 0, len(registry))
	for _, n := range Names() {
		out = append(out, registry[n])
	}
	return out
}

// Sorted returns every registered workload sorted by name (for tests).
func Sorted() []*Workload {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]*Workload, 0, len(registry))
	for _, w := range registry {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
