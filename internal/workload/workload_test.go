package workload

import (
	"testing"

	"flywheel/internal/emu"
	"flywheel/internal/isa"
)

func TestRegistryComplete(t *testing.T) {
	names := Names()
	if len(names) != 10 {
		t.Fatalf("expected the paper's 10 benchmarks, have %d", len(names))
	}
	for _, n := range names {
		w, err := Get(n)
		if err != nil {
			t.Errorf("Get(%q): %v", n, err)
			continue
		}
		if w.Description == "" || w.Suite == "" {
			t.Errorf("%s lacks metadata", n)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
	if len(All()) != 10 || len(Sorted()) != 10 {
		t.Error("All/Sorted incomplete")
	}
}

func TestAllKernelsAssemble(t *testing.T) {
	for _, w := range All() {
		p := w.Program()
		if len(p.Code) < 20 {
			t.Errorf("%s: suspiciously small kernel (%d instructions)", w.Name, len(p.Code))
		}
	}
}

func TestAllKernelsRunToCompletion(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			m := emu.New(w.Program())
			n, err := m.Run(20_000_000)
			if err != nil {
				t.Fatalf("execution error: %v", err)
			}
			if !m.Halted {
				t.Fatalf("did not halt within 20M instructions (ran %d)", n)
			}
			if n < 100_000 {
				t.Errorf("dynamic length %d too short for steady-state measurement", n)
			}
			if n > 10_000_000 {
				t.Errorf("dynamic length %d too long for the experiment budget", n)
			}
		})
	}
}

// classMix counts dynamic instruction classes over a bounded run of the
// measured (post-warm-up) phase.
func classMix(t *testing.T, w *Workload, limit uint64) map[isa.Class]uint64 {
	t.Helper()
	m, err := w.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	mix := map[isa.Class]uint64{}
	s := emu.NewStream(m, m.Retired+limit)
	for {
		tr, ok := s.Next()
		if !ok {
			break
		}
		mix[tr.Inst.Class()]++
	}
	if err := s.Err(); err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	return mix
}

func TestFPWorkloadsAreFPHeavy(t *testing.T) {
	for _, name := range []string{"mesa", "equake", "turb3d"} {
		w := MustGet(name)
		if !w.FP {
			t.Errorf("%s not marked FP", name)
		}
		mix := classMix(t, w, 400_000)
		fp := mix[isa.ClassFPAdd] + mix[isa.ClassFPMul] + mix[isa.ClassFPDiv]
		var total uint64
		for _, v := range mix {
			total += v
		}
		if frac := float64(fp) / float64(total); frac < 0.15 {
			t.Errorf("%s: FP fraction %.2f, want >= 0.15", name, frac)
		}
	}
}

func TestIntWorkloadsBranchFractions(t *testing.T) {
	// All kernels need a meaningful branch fraction for the control-flow
	// experiments, and loads for the memory system.
	for _, w := range All() {
		mix := classMix(t, w, 400_000)
		var total uint64
		for _, v := range mix {
			total += v
		}
		branches := mix[isa.ClassBranch] + mix[isa.ClassJump]
		if frac := float64(branches) / float64(total); frac < 0.03 {
			t.Errorf("%s: branch fraction %.3f, want >= 0.03", w.Name, frac)
		}
		if mix[isa.ClassLoad] == 0 {
			t.Errorf("%s: no loads at all", w.Name)
		}
	}
}

func TestVortexIsCallHeavy(t *testing.T) {
	mix := classMix(t, MustGet("vortex"), 400_000)
	var total uint64
	for _, v := range mix {
		total += v
	}
	if frac := float64(mix[isa.ClassJump]) / float64(total); frac < 0.05 {
		t.Errorf("vortex jump/call fraction = %.3f, want >= 0.05", frac)
	}
}

func TestProgramsAreCached(t *testing.T) {
	w := MustGet("gcc")
	if w.Program() != w.Program() {
		t.Error("Program not cached")
	}
}
