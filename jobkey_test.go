package flywheel

import "testing"

// The public Config defaults differently from lab.Job: Instructions 0
// means 300k measured instructions unless RunToCompletion is set, which
// forces the unbounded path regardless of Instructions. These tests pin
// that configurations identical after defaulting collide to one cache
// entry, and meaningfully different ones never do.

func TestConfigJobKeyDefaults(t *testing.T) {
	base := Config{Benchmark: "gzip", Arch: ArchFlywheel, FEBoostPct: 50, BEBoostPct: 50}

	implicit := base // Instructions 0 -> the 300k default
	explicit := base
	explicit.Instructions = 300_000
	if implicit.job().Key() != explicit.job().Key() {
		t.Errorf("Instructions 0 and 300000 differ:\n%q\n%q",
			implicit.job().Key(), explicit.job().Key())
	}

	// RunToCompletion wins over any Instructions value.
	rtc := base
	rtc.RunToCompletion = true
	rtcWithBudget := base
	rtcWithBudget.RunToCompletion = true
	rtcWithBudget.Instructions = 12_345
	if rtc.job().Key() != rtcWithBudget.job().Key() {
		t.Errorf("RunToCompletion keys differ with a stale Instructions value:\n%q\n%q",
			rtc.job().Key(), rtcWithBudget.job().Key())
	}

	// But RunToCompletion is not the 300k default.
	if rtc.job().Key() == implicit.job().Key() {
		t.Errorf("run-to-completion collides with the default budget: %q", rtc.job().Key())
	}

	// Node defaulting matches the lab's normalization.
	withNode := base
	withNode.Node = Node130
	if base.job().Key() != withNode.job().Key() {
		t.Errorf("Node 0 and Node130 differ:\n%q\n%q", base.job().Key(), withNode.job().Key())
	}
}

func TestConfigJobKeyDistinctProfiles(t *testing.T) {
	// Distinct synthetic profiles produce distinct benchmark names and so
	// distinct cache keys, even when every other knob matches.
	a := Config{Benchmark: Profile{Seed: 1}.Name()}
	b := Config{Benchmark: Profile{Seed: 2}.Name()}
	c := Config{Benchmark: Profile{ILP: 1, Seed: 1}.Name()}
	keys := map[string]string{}
	for _, cfg := range []Config{a, b, c} {
		k := cfg.job().Key()
		if prev, dup := keys[k]; dup {
			t.Errorf("configs %q and %q share key %q", prev, cfg.Benchmark, k)
		}
		keys[k] = cfg.Benchmark
	}
}
