package flywheel

import (
	"reflect"
	"sync"
	"testing"
)

func TestRunManyMatchesRun(t *testing.T) {
	cfgs := []Config{
		{Benchmark: "gzip", Arch: ArchBaseline, Instructions: 5_000},
		{Benchmark: "gzip", Arch: ArchFlywheel, FEBoostPct: 50, BEBoostPct: 50, Instructions: 5_000},
		{Benchmark: "vpr", Arch: ArchBaseline, Instructions: 5_000},
	}
	batch, err := RunMany(cfgs, SweepOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(cfgs) {
		t.Fatalf("len(results) = %d, want %d", len(batch), len(cfgs))
	}
	for i, cfg := range cfgs {
		single, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batch[i], single) {
			t.Errorf("result %d differs between RunMany and Run:\nbatch:  %+v\nsingle: %+v", i, batch[i], single)
		}
	}
}

func TestRunManyDeterministicAndDeduplicated(t *testing.T) {
	// The same configuration three times, plus the same one spelled with
	// explicit defaults — all four must return identical results.
	cfgs := []Config{
		{Benchmark: "parser", Instructions: 5_000},
		{Benchmark: "parser", Instructions: 5_000},
		{Benchmark: "parser", Instructions: 5_000},
		{Benchmark: "parser", Node: Node130, Instructions: 5_000},
	}
	res, err := RunMany(cfgs, SweepOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res); i++ {
		if !reflect.DeepEqual(res[0], res[i]) {
			t.Errorf("result %d differs from result 0 for identical configs", i)
		}
	}
}

func TestRunManyProgressAndErrors(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	cfgs := []Config{
		{Benchmark: "gzip", Instructions: 5_000},
		{Benchmark: "vpr", Instructions: 5_000},
	}
	_, err := RunMany(cfgs, SweepOptions{Progress: func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if total != len(cfgs) {
			t.Errorf("total = %d, want %d", total, len(cfgs))
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if calls != len(cfgs) {
		t.Errorf("progress called %d times, want %d", calls, len(cfgs))
	}
	mu.Unlock()

	if _, err := RunMany([]Config{{Benchmark: "nope", Instructions: 5_000}}, SweepOptions{}); err == nil {
		t.Error("no error for unknown benchmark")
	}
}

func TestSweepShape(t *testing.T) {
	benches := []string{"gzip", "vpr"}
	boosts := []int{0, 50}
	res, err := Sweep(Config{Arch: ArchFlywheel, BEBoostPct: 50, Instructions: 5_000},
		benches, boosts, SweepOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(benches) {
		t.Fatalf("len(res) = %d, want %d", len(res), len(benches))
	}
	for i, row := range res {
		if len(row) != len(boosts) {
			t.Fatalf("len(res[%d]) = %d, want %d", i, len(row), len(boosts))
		}
		for j, r := range row {
			if r.Retired < 5_000 {
				t.Errorf("res[%d][%d] retired %d, want >= 5000", i, j, r.Retired)
			}
		}
		// A faster front end must not meaningfully slow the flywheel down
		// (tiny budgets allow a little mispredict-timing noise).
		if float64(row[1].TimePS) > float64(row[0].TimePS)*1.05 {
			t.Errorf("%s: FE+50%% time %d ps well above FE+0%% time %d ps", benches[i], row[1].TimePS, row[0].TimePS)
		}
	}
}
