package flywheel

// Acceptance tests for the persistent store and the labd client at the
// public API: a sweep run twice against one store directory simulates each
// distinct configuration exactly once across both "processes" (modeled as
// two Stores over one directory — separate memory tiers, shared disk), and
// a sweep routed through a labd service returns results identical to the
// in-process path.

import (
	"net/http/httptest"
	"strings"
	"testing"

	"flywheel/internal/lab"
	"flywheel/internal/labd"
)

var acceptanceBase = Config{Arch: ArchFlywheel, FEBoostPct: 50, BEBoostPct: 50, Instructions: 2000}

func acceptanceSweep(t *testing.T, opt SweepOptions) [][]Result {
	t.Helper()
	res, err := Sweep(acceptanceBase, []string{"ijpeg", "gcc"}, []int{0, 50}, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSweepStoreColdWarm(t *testing.T) {
	dir := t.TempDir()
	cold, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	first := acceptanceSweep(t, SweepOptions{Store: cold})
	if !strings.Contains(cold.StatsLine(), "4 sim runs") {
		t.Fatalf("cold pass: %s, want 4 sim runs (2 benchmarks × 2 boosts)", cold.StatsLine())
	}

	// "Second process": a fresh Store over the same directory.
	warm, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	second := acceptanceSweep(t, SweepOptions{Store: warm})
	line := warm.StatsLine()
	if !strings.Contains(line, "0 sim runs") || !strings.Contains(line, "4 disk hits") {
		t.Fatalf("warm pass simulated: %s, want 4 disk hits and 0 sim runs", line)
	}
	for i := range first {
		for j := range first[i] {
			if first[i][j] != second[i][j] {
				t.Fatalf("result [%d][%d] differs cold vs warm:\n %+v\n %+v", i, j, first[i][j], second[i][j])
			}
		}
	}
}

func TestSweepViaClientMatchesInProcess(t *testing.T) {
	ts := httptest.NewServer(labd.NewServer(lab.NewCache()).Handler())
	defer ts.Close()

	local := acceptanceSweep(t, SweepOptions{})
	remote := acceptanceSweep(t, SweepOptions{Client: NewClient(ts.URL)})
	if len(remote) != len(local) {
		t.Fatalf("shape mismatch: %d vs %d benchmarks", len(remote), len(local))
	}
	for i := range local {
		for j := range local[i] {
			if local[i][j] != remote[i][j] {
				t.Fatalf("result [%d][%d] differs via labd:\n local  %+v\n remote %+v", i, j, local[i][j], remote[i][j])
			}
		}
	}
}

// TestRunManyEmptyMatchesAcrossPaths: an empty config list succeeds
// identically with and without a Client (the service rejects empty
// batches, so the client path must short-circuit before posting).
func TestRunManyEmptyMatchesAcrossPaths(t *testing.T) {
	ts := httptest.NewServer(labd.NewServer(lab.NewCache()).Handler())
	defer ts.Close()
	for _, opt := range []SweepOptions{{}, {Client: NewClient(ts.URL)}} {
		res, err := RunMany(nil, opt)
		if err != nil || len(res) != 0 {
			t.Fatalf("empty RunMany (client=%t): res=%v err=%v, want empty success", opt.Client != nil, res, err)
		}
	}
}

func TestRunManyViaClientReportsJobError(t *testing.T) {
	ts := httptest.NewServer(labd.NewServer(lab.NewCache()).Handler())
	defer ts.Close()
	_, err := RunMany([]Config{
		{Benchmark: "ijpeg", Instructions: 2000},
		{Benchmark: "no-such-benchmark", Instructions: 2000},
	}, SweepOptions{Client: NewClient(ts.URL)})
	if err == nil || !strings.Contains(err.Error(), "no-such-benchmark") {
		t.Fatalf("err = %v, want the unknown-benchmark failure surfaced through the service", err)
	}
}
